"""The extended (null-aware) interpretation of a functional dependency.

Section 4 of the paper extends the classical predicate ``f(t, r)`` to rows
and instances with nulls using the least-extension rule::

    f(t, r) = f_classical(t, r)                     if t[XY], r[XY] total
            = lub { f_classical(t', r') }           otherwise,

where ``r'`` ranges over the completions ``AP(r, XY)`` and ``t'`` is the
completion of ``t`` *inside* ``r'``.  (The paper writes the two completion
sets side by side; the worked examples and Proposition 1 make clear that the
pairing is consistent — an inconsistent pairing would contradict the
``f(t1, r1) = true`` example of Figure 2.)

Three evaluators are provided, from ground truth to paper-fast:

* :func:`evaluate_fd_brute` — enumerate ``AP(r, XY)`` outright (exponential
  in the total number of nulls; the definition itself);
* ``method="enumerate"`` of :func:`evaluate_fd` — enumerate only the
  completions of ``t`` when the rest of the instance is null-free
  (exponential in ``t``'s nulls only);
* ``method="cases"`` — a polynomial decision that generalizes Proposition
  1's case analysis (no enumeration at all; see below).

:func:`proposition1_case` is the *literal* Proposition 1, returning the
matching condition label (``T1``, ``T2``, ``T3``, ``F1``, ``F2``) exactly as
the paper states it.  The literal proposition is knowingly incomplete in one
family of corner cases: when the null-free part of ``r`` *already violates*
``f`` among tuples matching ``t`` (e.g. ``t[X]`` total, ``t[Y]`` null, and
two tuples agreeing with ``t[X]`` but disagreeing on ``Y``), every
substitution for ``t``'s null is violating, so the least-extension value is
``false`` — yet none of F1/F2 applies and the literal reading returns
``unknown``.  The ``cases`` evaluator decides these corners exactly; the
divergence is reproduced and documented in the tests and EXPERIMENTS.md.
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, List, NamedTuple, Optional, Sequence, Tuple

from ..errors import DomainError, ReproError
from .attributes import attrs_difference
from .fd import FD, FDInput, as_fd
from .relation import Relation
from .schema import RelationSchema
from .truth import FALSE, TRUE, UNKNOWN, TruthValue, lub
from .tuples import Row
from .values import Null, is_constant, is_null

#: Default cap on brute-force completion enumeration.
DEFAULT_LIMIT = 500_000


class Proposition1Result(NamedTuple):
    """Outcome of the literal Proposition 1 case analysis."""

    value: TruthValue
    condition: Optional[str]  # "T1" | "T2" | "T3" | "F1" | "F2" | None


# ---------------------------------------------------------------------------
# shared helpers
# ---------------------------------------------------------------------------


def _normalize(fd: FD) -> Tuple[Tuple[str, ...], Tuple[str, ...]]:
    """Return ``(X, Y)`` with ``Y`` made disjoint from ``X``.

    ``Y`` may come back empty, which means the FD is trivial.
    """
    lhs = fd.lhs
    rhs = attrs_difference(fd.rhs, fd.lhs)
    return lhs, rhs


def _other_rows(row: Row, relation: Relation) -> List[Row]:
    """Rows of ``relation`` other than ``row`` (by object identity).

    If ``row`` is not a member of ``relation`` the full row list is
    returned: the paper always evaluates ``f(t, r)`` with ``t`` in ``r``,
    but the formula is well-defined for an external tuple too, and
    self-comparison can never violate an FD (a completion substitutes each
    null object consistently), so membership only matters for excluding the
    row itself.
    """
    return [other for other in relation.rows if other is not row]


def _rows_total_on(rows: Sequence[Row], attrs: Sequence[str]) -> bool:
    return all(row.is_total(attrs) for row in rows)


def _shares_null_across(row: Row, lhs: Sequence[str], rhs: Sequence[str]) -> bool:
    """True when one null object occupies several positions of ``t[XY]``."""
    seen: set = set()
    for attr in tuple(lhs) + tuple(rhs):
        value = row[attr]
        if is_null(value):
            if id(value) in seen:
                return True
            seen.add(id(value))
    return False


def _compatible_on(row: Row, other: Row, attrs: Sequence[str]) -> bool:
    """``other[attrs]`` is a completion of ``row[attrs]``.

    Handles a null object occurring in several positions: a consistent
    substitution must give those positions equal values.
    """
    binding: Dict[int, Any] = {}
    for attr in attrs:
        mine = row[attr]
        theirs = other[attr]
        if is_null(mine):
            key = id(mine)
            if key in binding:
                if binding[key] != theirs:
                    return False
            else:
                binding[key] = theirs
        elif mine != theirs:
            return False
    return True


def _domain_size(relation: Relation, attr: str) -> Optional[int]:
    """Declared domain size, or ``None`` when the domain is unbounded."""
    declared = relation.schema.domain(attr)
    return len(declared) if declared.is_finite else None


def _effective_schema(relation: Relation, attrs: Sequence[str]) -> RelationSchema:
    """The schema with unbounded domains (among ``attrs``) frozen to the
    effective domains of the instance's full columns.

    Freezing is sound for FD evaluation (equality-pattern argument, see
    :func:`repro.core.domain.effective_domain`) and it cannot introduce a
    spurious F2: the effective domain holds one more fresh symbol than the
    column has nulls, so completions of a null can never be exhausted by
    the other rows.
    """
    overrides = {}
    for attr in attrs:
        declared = relation.schema.domain(attr)
        if not declared.is_finite:
            overrides[attr] = relation.enumeration_domain(attr)
    if not overrides:
        return relation.schema
    domains = {
        attr: overrides.get(attr, relation.schema.domain(attr))
        for attr in relation.schema.attributes
    }
    return RelationSchema(relation.schema.name, relation.schema.attributes, domains)


def _can_differ_on(row: Row, other: Row, attrs: Sequence[str], relation: Relation) -> bool:
    """Can some completion of ``row[attrs]`` differ from ``other[attrs]``?

    Per attribute: a constant differs iff it already differs; a null can be
    steered away from ``other``'s value iff its domain has at least two
    values (the other tuple's value is one of them).  Shared null objects
    across the positions are handled by the caller via enumeration.
    """
    for attr in attrs:
        mine = row[attr]
        if is_constant(mine):
            if mine != other[attr]:
                return True
        elif is_null(mine):
            size = _domain_size(relation, attr)
            if size is None or size >= 2:
                return True
    return False


def _x_completion_total(row: Row, lhs: Sequence[str], relation: Relation) -> Optional[int]:
    """Number of completions of ``t[X]``; ``None`` when infinite.

    With no nulls in ``t[X]`` this is 1.  A null on an unbounded domain
    makes the count infinite, so the "run out of domain values" situation
    of F2 cannot arise.
    """
    total = 1
    for attr in lhs:
        if is_null(row[attr]):
            size = _domain_size(relation, attr)
            if size is None:
                return None
            total *= size
    return total


def _matching_groups(
    row: Row, others: Sequence[Row], lhs: Sequence[str]
) -> Dict[Tuple[Any, ...], List[Row]]:
    """Null-free neighbours grouped by their ``X`` projection, restricted to
    projections that are completions of ``t[X]``."""
    groups: Dict[Tuple[Any, ...], List[Row]] = {}
    for other in others:
        if _compatible_on(row, other, lhs):
            groups.setdefault(other.project(lhs), []).append(other)
    return groups


def _group_safe(row: Row, group: Sequence[Row], rhs: Sequence[str]) -> bool:
    """Does the ``X``-group admit a non-violating choice of ``t[Y]``?

    Safe iff all group members agree on ``Y`` and their common value is
    compatible with the non-null part of ``t[Y]``.
    """
    common = group[0].project(rhs)
    if any(other.project(rhs) != common for other in group[1:]):
        return False
    for attr, value in zip(rhs, common):
        mine = row[attr]
        if is_constant(mine) and mine != value:
            return False
    return True


# ---------------------------------------------------------------------------
# exact polynomial evaluation (generalized Proposition 1)
# ---------------------------------------------------------------------------


def _exact_value(
    fd: FD, row: Row, others: Sequence[Row], relation: Relation
) -> TruthValue:
    """Exact least-extension value of ``f(t, r)``, polynomial time.

    Preconditions (checked by the caller): the other rows are null-free on
    ``XY`` and ``t`` does not reuse one null object across several ``XY``
    positions.

    The decision mirrors the derivation in DESIGN.md §6:

    * **not TRUE** iff some neighbour is reachable on ``X`` (compatible)
      and escapable on ``Y`` (a completion can disagree);
    * **FALSE** iff every completion of ``t[X]`` is "unsafe": the number of
      ``X``-completions is finite, all of them occur among the neighbours,
      and no occurring group admits an agreeing ``Y`` choice.
    """
    lhs, rhs = _normalize(fd)
    if not rhs:
        return TRUE

    violable = any(
        _compatible_on(row, other, lhs) and _can_differ_on(row, other, rhs, relation)
        for other in others
    )
    if not violable:
        return TRUE

    total = _x_completion_total(row, lhs, relation)
    if total is not None:
        groups = _matching_groups(row, others, lhs)
        if len(groups) == total and all(
            not _group_safe(row, group, rhs) for group in groups.values()
        ):
            return FALSE
    return UNKNOWN


def _enumerated_value(
    fd: FD, row: Row, others: Sequence[Row], relation: Relation
) -> TruthValue:
    """Least-extension value by enumerating completions of ``t`` only.

    Used when ``t`` reuses a null object across positions (the polynomial
    shortcut's independence assumption fails) but the other rows are still
    null-free on ``XY``.  Exponential in the number of *distinct* nulls of
    ``t[XY]`` only.
    """
    lhs, rhs = _normalize(fd)
    if not rhs:
        return TRUE
    attrs = tuple(lhs) + tuple(rhs)

    nulls: List[Null] = []
    seen: set = set()
    for attr in attrs:
        value = row[attr]
        if is_null(value) and id(value) not in seen:
            seen.add(id(value))
            nulls.append(value)

    choices: List[Tuple[Any, ...]] = []
    for null_obj in nulls:
        allowed: Optional[set] = None
        for attr in attrs:
            if row[attr] is null_obj:
                domain = relation.enumeration_domain(attr)
                values = set(domain)
                allowed = values if allowed is None else (allowed & values)
        choices.append(tuple(sorted(allowed or (), key=repr)))

    outcomes: List[TruthValue] = []
    for combo in itertools.product(*choices):
        substitution = dict(zip((id(n) for n in nulls), combo))
        completed = row.substitute({n: substitution[id(n)] for n in nulls})
        t_x = completed.project(lhs)
        t_y = completed.project(rhs)
        violated = any(
            other.project(lhs) == t_x and other.project(rhs) != t_y
            for other in others
        )
        outcomes.append(FALSE if violated else TRUE)
        if TRUE in outcomes and FALSE in outcomes:
            return UNKNOWN
    return lub(outcomes)


# ---------------------------------------------------------------------------
# public evaluators
# ---------------------------------------------------------------------------


def evaluate_fd_brute(
    fd: FDInput,
    row: Row,
    relation: Relation,
    limit: int = DEFAULT_LIMIT,
) -> TruthValue:
    """Ground-truth evaluation: the least-extension definition verbatim.

    Enumerates every completion of ``r`` on the FD's attributes (nulls in
    other columns are irrelevant to the FD and are left in place), evaluates
    the classical predicate at ``t``'s completion inside each, and joins.

    Exponential; guarded by ``limit`` (see
    :meth:`repro.core.relation.Relation.completions`).
    """
    fd = as_fd(fd)
    lhs, rhs = _normalize(fd)
    if not rhs:
        return TRUE
    attrs = tuple(lhs) + tuple(rhs)

    rows = list(relation.rows)
    index = next((i for i, r in enumerate(rows) if r is row), None)
    if index is None:
        rows.append(row)
        index = len(rows) - 1
    working = Relation(relation.schema, rows)

    saw_true = False
    saw_false = False
    for completed in working.completions(attributes=attrs, limit=limit):
        target = completed.rows[index]
        t_x = target.project(lhs)
        t_y = target.project(rhs)
        violated = any(
            other.project(lhs) == t_x and other.project(rhs) != t_y
            for i, other in enumerate(completed.rows)
            if i != index
        )
        if violated:
            saw_false = True
        else:
            saw_true = True
        if saw_true and saw_false:
            return UNKNOWN
    if saw_true and not saw_false:
        return TRUE
    if saw_false and not saw_true:
        return FALSE
    return TRUE  # no completions means no nulls: handled above, defensive


def evaluate_fd(
    fd: FDInput,
    row: Row,
    relation: Relation,
    method: str = "auto",
    limit: int = DEFAULT_LIMIT,
) -> TruthValue:
    """The extended interpretation ``f(t, r)`` (three-valued).

    ``method``:

    * ``"auto"`` (default) — the exact polynomial case analysis when the
      rest of the instance is null-free on the FD's attributes (the setting
      of Proposition 1), falling back to completion enumeration of the
      other rows (the paper's "consider all completions of r - {t}
      iteratively") and, if null objects are shared between ``t`` and other
      rows, to full brute force;
    * ``"cases"`` — the polynomial analysis; requires the rest null-free;
    * ``"enumerate"`` — enumeration of ``t``'s completions only; requires
      the rest null-free;
    * ``"brute"`` — :func:`evaluate_fd_brute`.
    """
    fd = as_fd(fd)
    lhs, rhs = _normalize(fd)
    if not rhs:
        return TRUE
    attrs = tuple(lhs) + tuple(rhs)
    others = _other_rows(row, relation)
    rest_total = _rows_total_on(others, attrs)

    if method == "brute":
        return evaluate_fd_brute(fd, row, relation, limit=limit)
    if method in ("cases", "enumerate") and not rest_total:
        raise ReproError(
            f"method={method!r} requires the rest of the instance to be "
            "null-free on the FD's attributes; use method='auto' or 'brute'"
        )
    if method == "enumerate":
        return _enumerated_value(fd, row, others, relation)
    if method == "cases":
        if _shares_null_across(row, lhs, rhs):
            return _enumerated_value(fd, row, others, relation)
        return _exact_value(fd, row, others, relation)
    if method != "auto":
        raise ValueError(f"unknown evaluation method {method!r}")

    # -- auto dispatch -------------------------------------------------------
    if rest_total:
        if _shares_null_across(row, lhs, rhs):
            return _enumerated_value(fd, row, others, relation)
        return _exact_value(fd, row, others, relation)

    row_nulls = {id(v) for v in row.nulls()}
    shared = any(
        id(value) in row_nulls for other in others for value in other.nulls()
    )
    if shared:
        return evaluate_fd_brute(fd, row, relation, limit=limit)

    # Enumerate completions of the *other* rows only, applying the exact
    # analysis for each (the paper's iterative reading of Proposition 1).
    # Unbounded domains are frozen to effective domains computed from the
    # FULL instance's columns, so the rest's nulls can take the constants
    # appearing in ``row``'s own cells too.
    frozen = _effective_schema(relation, attrs)
    rest = Relation(frozen, [Row(frozen, other.values) for other in others])
    bound_row = Row(frozen, row.values)
    outcomes: List[TruthValue] = []
    for completed_rest in rest.completions(attributes=attrs, limit=limit):
        scenario = Relation(
            frozen, list(completed_rest.rows) + [bound_row]
        )
        if _shares_null_across(bound_row, lhs, rhs):
            value = _enumerated_value(fd, bound_row, completed_rest.rows, scenario)
        else:
            value = _exact_value(fd, bound_row, completed_rest.rows, scenario)
        outcomes.append(value)
        if value is UNKNOWN:
            return UNKNOWN
        if TRUE in outcomes and FALSE in outcomes:
            return UNKNOWN
    return lub(outcomes)


# ---------------------------------------------------------------------------
# literal Proposition 1
# ---------------------------------------------------------------------------


def proposition1_case(
    fd: FDInput, row: Row, relation: Relation
) -> Proposition1Result:
    """The five conditions of Proposition 1, verbatim.

    Requires the setting of the proposition: every row other than ``t`` is
    null-free on the FD's attributes (raises otherwise).  Returns the truth
    value together with the matched condition label; ``unknown`` carries no
    label ("in all the other cases").

    This is the *paper-faithful* analysis, reproduced for the Figure 2
    experiment; use :func:`evaluate_fd` for exact semantics (see the module
    docstring for the corner cases where the two differ).
    """
    fd = as_fd(fd)
    lhs, rhs = _normalize(fd)
    if not rhs:
        return Proposition1Result(TRUE, "T1")
    attrs = tuple(lhs) + tuple(rhs)
    others = _other_rows(row, relation)
    if not _rows_total_on(others, attrs):
        raise ReproError(
            "Proposition 1 assumes r - {t} has no nulls on the FD's "
            "attributes; complete the other rows first or use evaluate_fd"
        )

    x_null = row.has_null(lhs)
    y_null = row.has_null(rhs)

    if not x_null and not y_null:
        t_x = row.project(lhs)
        t_y = row.project(rhs)
        for other in others:
            if other.project(lhs) == t_x and other.project(rhs) != t_y:
                return Proposition1Result(FALSE, "F1")
        return Proposition1Result(TRUE, "T1")

    if y_null and not x_null:
        t_x = row.project(lhs)
        if not any(other.project(lhs) == t_x for other in others):
            return Proposition1Result(TRUE, "T2")
        return Proposition1Result(UNKNOWN, None)

    if x_null and not y_null:
        compatible = [o for o in others if _compatible_on(row, o, lhs)]
        t_y = row.project(rhs)
        if all(other.project(rhs) == t_y for other in compatible):
            return Proposition1Result(TRUE, "T3")
        total = _x_completion_total(row, lhs, relation)
        if total is not None:
            realized = {other.project(lhs) for other in compatible}
            if len(realized) == total and all(
                other.project(rhs) != t_y for other in compatible
            ):
                return Proposition1Result(FALSE, "F2")
        return Proposition1Result(UNKNOWN, None)

    return Proposition1Result(UNKNOWN, None)
