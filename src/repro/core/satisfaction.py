"""Strong and weak satisfiability of functional dependencies.

Section 4 defines, for a single FD ``f`` and instance ``r``:

* ``f`` **(strongly) holds** in ``r``  iff  ``f(t, r) = true`` for every
  tuple ``t`` — equivalently, ``f`` holds classically in *every* completion
  of ``r``;
* ``f`` **weakly holds** in ``r``  iff  ``f(t, r) ≠ false`` for every ``t``.

Section 6 shows that for a *set* ``F`` the members interact: each FD can
weakly hold on its own while no single completion satisfies them all (the
``{A→B, B→C}`` example).  The set-level notions are therefore:

* **strong satisfaction** of ``F`` — every member strongly holds.  (The
  paper notes FDs "can be tested for strong satisfiability independently";
  universal quantification over completions distributes over conjunction.)
* **weak satisfaction** of ``F`` — some single completion of ``r``
  satisfies every member classically.  This joint, existential notion is
  what Theorems 3 and 4 decide, and it is *strictly stronger* than "every
  member weakly holds".

Every notion here has a brute-force completion-enumeration form (ground
truth; exponential) next to the per-tuple evaluator form; the test suite
verifies their agreement, and the efficient algorithms live in
:mod:`repro.testfd` and :mod:`repro.chase`.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from .fd import FDInput, FDSet, as_fd, holds_classical
from .interpretation import DEFAULT_LIMIT, evaluate_fd
from .relation import Relation
from .truth import FALSE, TRUE, UNKNOWN, TruthValue
from .tuples import Row


def fd_value_profile(
    fd: FDInput, relation: Relation, method: str = "auto", limit: int = DEFAULT_LIMIT
) -> List[TruthValue]:
    """``f(t, r)`` for every tuple ``t`` of ``r``, in row order."""
    fd = as_fd(fd)
    return [
        evaluate_fd(fd, row, relation, method=method, limit=limit)
        for row in relation
    ]


def strongly_holds(
    fd: FDInput, relation: Relation, method: str = "auto", limit: int = DEFAULT_LIMIT
) -> bool:
    """``f(t, r) = true`` for every tuple (section 4's *strongly holds*)."""
    return all(
        value is TRUE
        for value in fd_value_profile(fd, relation, method=method, limit=limit)
    )


def weakly_holds(
    fd: FDInput, relation: Relation, method: str = "auto", limit: int = DEFAULT_LIMIT
) -> bool:
    """``f(t, r) ≠ false`` for every tuple (section 4's *weakly holds*).

    This is the per-FD notion; for sets use :func:`weakly_satisfied`, which
    accounts for the interaction effects of section 6.
    """
    return all(
        value is not FALSE
        for value in fd_value_profile(fd, relation, method=method, limit=limit)
    )


# ---------------------------------------------------------------------------
# set-level notions
# ---------------------------------------------------------------------------


def strongly_satisfied(
    fds: Iterable[FDInput],
    relation: Relation,
    method: str = "auto",
    limit: int = DEFAULT_LIMIT,
) -> bool:
    """Every FD of ``F`` strongly holds in ``r``.

    Equivalent to: every completion of ``r`` classically satisfies every
    member of ``F`` (see :func:`strongly_satisfied_bruteforce`).
    """
    return all(
        strongly_holds(fd, relation, method=method, limit=limit) for fd in fds
    )


def weakly_holds_each(
    fds: Iterable[FDInput],
    relation: Relation,
    method: str = "auto",
    limit: int = DEFAULT_LIMIT,
) -> bool:
    """Each member weakly holds *independently* (the pre-section-6 notion).

    Strictly weaker than :func:`weakly_satisfied`: the paper's ``{A→B, B→C}``
    example passes this test but admits no completion satisfying both.
    """
    return all(
        weakly_holds(fd, relation, method=method, limit=limit) for fd in fds
    )


def strongly_satisfied_bruteforce(
    fds: Iterable[FDInput], relation: Relation, limit: int = DEFAULT_LIMIT
) -> bool:
    """Ground truth for strong satisfaction: all completions satisfy all FDs."""
    fd_list = [as_fd(fd) for fd in fds]
    attrs = _relevant_attributes(fd_list, relation)
    for completed in relation.completions(attributes=attrs, limit=limit):
        grounded = _ground(completed, attrs)
        if not all(holds_classical(fd, grounded) for fd in fd_list):
            return False
    return True


def weakly_satisfied(
    fds: Iterable[FDInput],
    relation: Relation,
    limit: int = DEFAULT_LIMIT,
) -> bool:
    """Joint weak satisfaction: *some* completion satisfies every FD.

    This is the semantic notion decided efficiently by Theorem 3 (the
    weak-convention TEST-FDs on a minimally incomplete instance) and
    Theorem 4 (no *nothing* in the chase fixpoint); this function is the
    brute-force ground truth the tests compare those algorithms against.
    """
    fd_list = [as_fd(fd) for fd in fds]
    attrs = _relevant_attributes(fd_list, relation)
    for completed in relation.completions(attributes=attrs, limit=limit):
        grounded = _ground(completed, attrs)
        if all(holds_classical(fd, grounded) for fd in fd_list):
            return True
    return False


def satisfying_completion(
    fds: Iterable[FDInput],
    relation: Relation,
    limit: int = DEFAULT_LIMIT,
) -> Optional[Relation]:
    """A completion of ``r`` satisfying every FD, or ``None``.

    The witness of :func:`weakly_satisfied` — useful in examples and for
    explaining *why* an instance is repairable.
    """
    fd_list = [as_fd(fd) for fd in fds]
    attrs = _relevant_attributes(fd_list, relation)
    for completed in relation.completions(attributes=attrs, limit=limit):
        grounded = _ground(completed, attrs)
        if all(holds_classical(fd, grounded) for fd in fd_list):
            return completed
    return None


def satisfaction_summary(
    fds: Iterable[FDInput],
    relation: Relation,
    method: str = "auto",
    limit: int = DEFAULT_LIMIT,
) -> Dict[str, object]:
    """A report used by examples and benches: per-FD profiles + verdicts."""
    fd_list = [as_fd(fd) for fd in fds]
    profiles = {
        repr(fd): fd_value_profile(fd, relation, method=method, limit=limit)
        for fd in fd_list
    }
    return {
        "profiles": profiles,
        "strongly_satisfied": all(
            all(v is TRUE for v in profile) for profile in profiles.values()
        ),
        "weakly_holds_each": all(
            all(v is not FALSE for v in profile) for profile in profiles.values()
        ),
        "weakly_satisfied": weakly_satisfied(fd_list, relation, limit=limit),
    }


# ---------------------------------------------------------------------------
# helpers
# ---------------------------------------------------------------------------


def _relevant_attributes(fds: List, relation: Relation) -> Tuple[str, ...]:
    """Attributes mentioned by any FD — completions elsewhere are irrelevant."""
    mentioned: List[str] = []
    seen: set = set()
    for fd in fds:
        for attr in fd.attributes:
            if attr not in seen:
                seen.add(attr)
                mentioned.append(attr)
    return tuple(a for a in relation.schema.attributes if a in seen)


def _ground(relation: Relation, attrs: Tuple[str, ...]) -> Relation:
    """Restrict to ``attrs`` so classical checks never see leftover nulls.

    Completions are taken only over the FD-relevant attributes; columns the
    FDs never mention may still hold nulls, which the classical interpreter
    (rightly) refuses.  Projecting them away is semantics-preserving for
    the FDs in question.  Projection keeps duplicates: completions that
    collapse tuples must still be checked against the same multiset of
    projections (a duplicate never violates an FD, so this is harmless
    either way, but it keeps the correspondence with the paper's sets
    obvious).
    """
    if attrs == relation.schema.attributes:
        return relation
    return relation.project(attrs, distinct=False)
