"""The query-operator AST and its static schema checker.

Six operators — ``Scan``, ``Select``, ``Project``, ``Join`` (natural),
``Rename``, ``Union``, ``Difference`` — closed over
:class:`~repro.core.schema.RelationSchema`.  Selection predicates reuse
the :mod:`repro.nullsem.queries` ``Pred`` AST (``Eq``/``In``/``AttrEq``
and boolean combinations), so the single-relation semantics the seed
has shipped since PR 1 is the same semantics a query pipeline applies.

:func:`output_schema` is the static checker: it walks a tree against a
catalog of schemas and either returns the output scheme (attributes in
deterministic order, finite domains carried through — intersected on
join-shared attributes) or raises :class:`QueryError` carrying one of
the lint diagnostic codes (``E_UNKNOWN_RELATION`` / ``E_UNKNOWN_ATTR``
/ ``E_ARITY`` / ``E_BAD_REQUEST``).  The evaluator, the linter, and the
server ``query`` verb all call the same checker, so a malformed query
is rejected identically on every surface.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Tuple

from ..core.domain import UNBOUNDED, Domain
from ..core.schema import DomainLike, RelationSchema
from ..errors import ReproError
from ..nullsem.queries import Pred, referenced_attributes


class QueryError(ReproError):
    """A statically ill-formed query.

    ``code`` is a :mod:`repro.analysis.diagnostics` code so the linter
    can surface the same failure as a :class:`Diagnostic` without a
    second vocabulary.
    """

    def __init__(self, message: str, code: str = "E_BAD_REQUEST") -> None:
        super().__init__(message)
        self.code = code


class Node:
    """Base class for query-tree nodes."""

    __slots__ = ()


@dataclass(frozen=True)
class Scan(Node):
    """A base-relation reference."""

    __slots__ = ("name",)
    name: str


@dataclass(frozen=True)
class Select(Node):
    """Rows of ``source`` satisfying ``pred`` (three-valued)."""

    __slots__ = ("source", "pred")
    source: Node
    pred: Pred


@dataclass(frozen=True)
class Project(Node):
    """``source`` restricted to ``attributes`` (duplicates collapse)."""

    __slots__ = ("source", "attributes")
    source: Node
    attributes: Tuple[str, ...]


@dataclass(frozen=True)
class Join(Node):
    """Natural join: equality on every shared attribute."""

    __slots__ = ("left", "right")
    left: Node
    right: Node


@dataclass(frozen=True)
class Rename(Node):
    """``source`` with attributes renamed per ``mapping`` (old → new)."""

    __slots__ = ("source", "mapping")
    source: Node
    mapping: Tuple[Tuple[str, str], ...]


@dataclass(frozen=True)
class Union(Node):
    """Set union of two union-compatible sources."""

    __slots__ = ("left", "right")
    left: Node
    right: Node


@dataclass(frozen=True)
class Difference(Node):
    """Rows of ``left`` that are in no completion of ``right``... under
    the chosen mode — see the evaluator for the exact three-valued
    reading."""

    __slots__ = ("left", "right")
    left: Node
    right: Node


@dataclass(frozen=True)
class Empty(Node):
    """A statically empty relation over a fixed scheme.

    Not parseable — the optimizer introduces it when a subtree is proved
    unsatisfiable (contradictory select, empty difference remainder), so
    downstream rewrites can cascade (``Join(Empty, x) → Empty``,
    ``Union(Empty, x) → x``) and the plan linter can point at the
    original site with ``E_EMPTY_CERTAIN`` / ``W_DEAD_BRANCH``.
    """

    __slots__ = ("attributes",)
    attributes: Tuple[str, ...]


def relation_names(node: Node) -> Tuple[str, ...]:
    """Every base relation the tree scans, first-occurrence order."""
    seen: Dict[str, None] = {}

    def walk(current: Node) -> None:
        if isinstance(current, Scan):
            seen.setdefault(current.name)
        elif isinstance(current, Empty):
            pass
        elif isinstance(current, (Select, Project, Rename)):
            walk(current.source)
        elif isinstance(current, (Join, Union, Difference)):
            walk(current.left)
            walk(current.right)
        else:
            raise QueryError(f"not a query node: {current!r}")

    walk(node)
    return tuple(seen)


def _merge_domain(first: DomainLike, second: DomainLike) -> DomainLike:
    """Domain of a join-shared attribute: the consistent intersection."""
    if not first.is_finite:
        return second
    if not second.is_finite:
        return first
    shared = [value for value in first if value in second]
    if not shared:
        # the intersection is empty; equality on this attribute can
        # still hold between nulls under *no* grounding, which the
        # evaluator discovers — statically we just lose the domain.
        return UNBOUNDED
    return Domain(shared)


def output_schema(
    node: Node, catalog: Mapping[str, RelationSchema], name: str = "answer"
) -> RelationSchema:
    """The scheme a query tree produces, or :class:`QueryError`.

    ``catalog`` maps relation name → scheme (a :class:`repro.Database`'s
    relations, a server's, or any ad-hoc environment).
    """
    attrs, domains = _check(node, catalog)
    return RelationSchema(name, attrs, domains=domains)


def _check(
    node: Node, catalog: Mapping[str, RelationSchema]
) -> Tuple[Tuple[str, ...], Dict[str, DomainLike]]:
    if isinstance(node, Scan):
        schema = catalog.get(node.name)
        if schema is None:
            known = ", ".join(sorted(catalog)) or "(none)"
            raise QueryError(
                f"unknown relation {node.name!r} (known: {known})",
                code="E_UNKNOWN_RELATION",
            )
        return schema.attributes, {
            attr: schema.domain(attr) for attr in schema.attributes
        }

    if isinstance(node, Empty):
        if not node.attributes:
            raise QueryError(
                "empty relation needs at least one attribute", code="E_ARITY"
            )
        return tuple(node.attributes), {
            attr: UNBOUNDED for attr in node.attributes
        }

    if isinstance(node, Select):
        attrs, domains = _check(node.source, catalog)
        missing = [
            attr
            for attr in referenced_attributes(node.pred)
            if attr not in attrs
        ]
        if missing:
            raise QueryError(
                f"predicate references unknown attribute(s) "
                f"{', '.join(repr(a) for a in missing)} "
                f"(input scheme: {' '.join(attrs)})",
                code="E_UNKNOWN_ATTR",
            )
        return attrs, domains

    if isinstance(node, Project):
        attrs, domains = _check(node.source, catalog)
        if not node.attributes:
            raise QueryError(
                "projection needs at least one attribute", code="E_ARITY"
            )
        if len(set(node.attributes)) != len(node.attributes):
            raise QueryError(
                f"duplicate attribute in projection "
                f"{' '.join(node.attributes)}",
                code="E_ARITY",
            )
        missing = [attr for attr in node.attributes if attr not in attrs]
        if missing:
            raise QueryError(
                f"cannot project onto unknown attribute(s) "
                f"{', '.join(repr(a) for a in missing)} "
                f"(input scheme: {' '.join(attrs)})",
                code="E_UNKNOWN_ATTR",
            )
        return tuple(node.attributes), {
            attr: domains[attr] for attr in node.attributes
        }

    if isinstance(node, Join):
        left_attrs, left_domains = _check(node.left, catalog)
        right_attrs, right_domains = _check(node.right, catalog)
        attrs = left_attrs + tuple(
            attr for attr in right_attrs if attr not in left_attrs
        )
        domains: Dict[str, DomainLike] = dict(right_domains)
        domains.update(left_domains)
        for attr in left_attrs:
            if attr in right_domains:
                domains[attr] = _merge_domain(
                    left_domains[attr], right_domains[attr]
                )
        return attrs, domains

    if isinstance(node, Rename):
        attrs, domains = _check(node.source, catalog)
        mapping = dict(node.mapping)
        if len(mapping) != len(node.mapping):
            raise QueryError(
                "rename maps the same attribute twice", code="E_ARITY"
            )
        missing = [old for old in mapping if old not in attrs]
        if missing:
            raise QueryError(
                f"cannot rename unknown attribute(s) "
                f"{', '.join(repr(a) for a in missing)} "
                f"(input scheme: {' '.join(attrs)})",
                code="E_UNKNOWN_ATTR",
            )
        renamed = tuple(mapping.get(attr, attr) for attr in attrs)
        if len(set(renamed)) != len(renamed):
            raise QueryError(
                f"rename collides attributes: {' '.join(renamed)}",
                code="E_ARITY",
            )
        return renamed, {
            mapping.get(attr, attr): domains[attr] for attr in attrs
        }

    if isinstance(node, (Union, Difference)):
        op = "union" if isinstance(node, Union) else "difference"
        left_attrs, left_domains = _check(node.left, catalog)
        right_attrs, right_domains = _check(node.right, catalog)
        if left_attrs != right_attrs:
            raise QueryError(
                f"{op} needs identical schemes on both sides, got "
                f"({' '.join(left_attrs)}) vs ({' '.join(right_attrs)})",
                code="E_ARITY",
            )
        domains = {}
        for attr in left_attrs:
            left_dom, right_dom = left_domains[attr], right_domains[attr]
            if isinstance(node, Difference):
                # rows come from the left side only
                domains[attr] = left_dom
            elif left_dom.is_finite and right_dom.is_finite:
                merged = list(left_dom)
                merged.extend(v for v in right_dom if v not in left_dom)
                domains[attr] = Domain(merged)
            else:
                domains[attr] = UNBOUNDED
        return left_attrs, domains

    raise QueryError(f"not a query node: {node!r}")
