"""Query evaluation with **certain** and **maybe** answer sets.

The evaluator is a small conditional-table algebra (Imielinski–Lipski
style, restricted to the equality atoms this library needs): every
derived row is a ``(values, cond)`` pair where ``cond`` is the
:mod:`~repro.query.conditions` formula under which the row belongs to
the result.  Base rows enter with the vacuous condition; ``select``
conjoins the resolved predicate, a natural ``join`` conjoins equality
atoms on shared attributes, and ``difference`` conjoins the negation of
"some right row matches".  Nulls flow through by **identity** — the
same :class:`~repro.core.values.Null` object scanned from two relations
is one unknown, so a shared null equates across a join exactly as the
chase's substitution machinery would force it to.

A finished row is then tagged by the truth of its condition:

* ``TRUE`` → a **certain** answer (in the result under every
  completion of the database);
* ``UNKNOWN`` → a **maybe** answer (in the result under some
  completion, not provably all);
* ``FALSE`` → dropped.

Two modes mirror :mod:`repro.nullsem.queries`: :data:`MODE_KLEENE`
evaluates conditions truth-functionally (linear, under-informative —
some certain answers are reported as maybe), :data:`MODE_LEAST`
grounds each condition's nulls over their consistent domains (the
declared finite domain of every column the null occurs in, intersected
across *all* its occurrences in the environment) and takes the least
upper bound — the paper's least-extension semantics, exact but local:
exponential only in the nulls one condition references.

:func:`ground_answers` produces the fully ground certain/possible
answer *sets* the differential suite compares against brute-force
completion enumeration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    Any,
    Dict,
    FrozenSet,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from ..api import TAG_CERTAIN, TAG_MAYBE, Answer, ResultSet
from ..core.domain import Domain
from ..core.relation import Relation
from ..core.truth import FALSE, TRUE, UNKNOWN
from ..core.values import NOTHING, Null, is_null
from ..errors import InconsistentInstanceError
from ..nullsem.queries import AndP, AttrEq, Eq, In, NotP, OrP, Pred
from .algebra import (
    Difference,
    Empty,
    Join,
    Node,
    Project,
    QueryError,
    Rename,
    Scan,
    Select,
    Union,
    output_schema,
)
from .conditions import (
    ALWAYS,
    Cond,
    EqV,
    all_of,
    any_of,
    evaluate_ground,
    groundings,
    kleene,
    least_truth,
    neg,
    nulls_of,
)

MODE_KLEENE = "kleene"
MODE_LEAST = "least"
_MODES = (MODE_KLEENE, MODE_LEAST)

#: default cap on grounding enumeration, matching the guard style of
#: :meth:`repro.core.relation.Relation.completions`.
DEFAULT_LIMIT = 200_000


@dataclass(frozen=True)
class CRow:
    """One conditional row: the tuple plus its membership condition."""

    __slots__ = ("values", "cond")
    values: Tuple[Any, ...]
    cond: Cond


def _row_key(values: Tuple[Any, ...]) -> Tuple[Any, ...]:
    """A dedup key distinguishing nulls by identity, constants by value."""
    return tuple(
        ("n", id(value)) if is_null(value) else ("c", value)
        for value in values
    )


class Evaluator:
    """Evaluate query trees against a fixed environment of relations.

    ``env`` maps relation name → :class:`~repro.core.relation.Relation`.
    Construction indexes every null in the environment: its consistent
    enumeration domain (declared column domains intersected across all
    occurrences, including occurrences in relations the query does not
    scan — the whole environment constrains an unknown) and its scan
    provenance.  A :data:`~repro.core.values.NOTHING` cell anywhere in
    the environment raises
    :class:`~repro.errors.InconsistentInstanceError` — the inconsistent
    element has no completions to quantify over.
    """

    def __init__(
        self,
        env: Mapping[str, Relation],
        limit: int = DEFAULT_LIMIT,
        fds: Optional[Mapping[str, Any]] = None,
        optimize: bool = True,
        hash_joins: bool = True,
    ) -> None:
        self.env: Dict[str, Relation] = dict(env)
        self.limit = limit
        #: relation name → FD set (optional; informs key inference in
        #: EXPLAIN output, never correctness)
        self.fds: Dict[str, Any] = dict(fds) if fds else {}
        #: apply proved-equivalent tree rewrites before evaluation
        self.optimize = optimize
        #: route natural joins through constant-key buckets (pair order
        #: is pinned identical to the nested loop)
        self.hash_joins = hash_joins
        #: the :class:`~repro.query.optimize.Plan` of the last ``run()``
        self.last_plan: Optional[Any] = None
        self._stats: Optional[Dict[str, Any]] = None
        #: id(null) → candidate constants (consistent enumeration domain)
        self.domains: Dict[int, Tuple[Any, ...]] = {}
        #: id(null) → the null object (keeps ids stable for the session)
        self._nulls: Dict[int, Null] = {}
        #: id(null) → {"relation", "attribute"} of the first occurrence
        self._provenance: Dict[int, Dict[str, Any]] = {}
        for name, relation in self.env.items():
            attributes = relation.schema.attributes
            for row in relation.rows:
                for attribute, value in zip(attributes, row.values):
                    if value is NOTHING:
                        raise InconsistentInstanceError(
                            f"relation {name!r} contains NOTHING; an "
                            "inconsistent instance has no completions "
                            "to answer queries over"
                        )
                    if not is_null(value):
                        continue
                    self._nulls[id(value)] = value
                    domain = relation.enumeration_domain(attribute)
                    previous = self.domains.get(id(value))
                    if previous is None:
                        self.domains[id(value)] = tuple(domain)
                    else:
                        self.domains[id(value)] = tuple(
                            constant
                            for constant in previous
                            if constant in domain
                        )
                    self._provenance.setdefault(
                        id(value),
                        {"relation": name, "attribute": attribute},
                    )

    # -- public API ---------------------------------------------------------

    def schema(self, node: Node, name: str = "answer"):
        """The output scheme (static check included)."""
        return output_schema(
            node,
            {name_: rel.schema for name_, rel in self.env.items()},
            name=name,
        )

    def symbolic(
        self, node: Node
    ) -> Tuple[Tuple[str, ...], List[CRow]]:
        """The conditional-table result: attributes + conditional rows.

        Always evaluates the tree *as given* (no rewrites) — this is the
        oracle surface the differential suites compare against, so it
        stays independent of the optimizer.
        """
        self.schema(node)  # static check first; errors carry lint codes
        return self._eval(node)

    def stats(self) -> Dict[str, Any]:
        """Per-relation instance statistics, collected once per session."""
        if self._stats is None:
            from .optimize import collect_stats

            self._stats = collect_stats(self.env)
        return self._stats

    def plan(self, node: Node, mode: str = MODE_LEAST) -> Any:
        """The optimized :class:`~repro.query.optimize.Plan` for ``node``."""
        from .optimize import optimize_tree

        catalog = {name: rel.schema for name, rel in self.env.items()}
        hazard_free = all(pool for pool in self.domains.values())
        return optimize_tree(
            node,
            catalog,
            stats=self.stats(),
            fds=self.fds,
            mode=mode,
            limit=self.limit,
            least_safe=hazard_free,
        )

    def explain(self, node: Node, mode: str = MODE_LEAST) -> str:
        """Human-readable plan: optimized tree, inferred keys, strategies."""
        from .optimize import render_plan

        self.schema(node)  # static check first; errors carry lint codes
        return render_plan(self.plan(node, mode=mode))

    def run(
        self,
        node: Node,
        mode: str = MODE_LEAST,
        as_of: Any = None,
        live: bool = True,
    ) -> ResultSet:
        """Evaluate and tag every surviving row certain/maybe."""
        if mode not in _MODES:
            raise QueryError(
                f"unknown evaluation mode {mode!r}; expected one of {_MODES}"
            )
        # the answer scheme (attribute order, domains metadata) always
        # comes from the tree as written, not from the rewritten plan
        schema = self.schema(node)
        target: Node = node
        self.last_plan = None
        if self.optimize:
            plan = self.plan(node, mode=mode)
            self.last_plan = plan
            target = plan.node
        attrs, crows = self._eval(target)
        if attrs != schema.attributes:  # pragma: no cover - rewrite bug guard
            raise QueryError(
                f"optimizer changed the output scheme: {attrs} vs "
                f"{schema.attributes}"
            )
        certain_rows: List[Tuple[Any, ...]] = []
        maybe_rows: List[Tuple[Any, ...]] = []
        for crow in crows:
            if mode == MODE_LEAST:
                truth = least_truth(crow.cond, self.domains, limit=self.limit)
            else:
                truth = kleene(crow.cond)
            if truth is TRUE:
                certain_rows.append(crow.values)
            elif truth is UNKNOWN:
                maybe_rows.append(crow.values)
        from ..analysis.sanitize import enabled as _sanitize_enabled

        if _sanitize_enabled():
            from ..analysis.sanitize import audit_evaluator

            audit_evaluator(self, attrs, crows, certain_rows, maybe_rows)
        domains: Dict[str, Domain] = {
            attribute: schema.domain(attribute)  # type: ignore[misc]
            for attribute in attrs
            if schema.domain(attribute).is_finite
        }
        meta = {"mode": mode}
        return ResultSet(
            certain=Answer(
                tag=TAG_CERTAIN,
                attributes=attrs,
                rows=tuple(certain_rows),
                as_of=as_of,
                live=live,
                provenance=self._answer_provenance(certain_rows),
                meta=dict(meta),
                domains=domains or None,
            ),
            maybe=Answer(
                tag=TAG_MAYBE,
                attributes=attrs,
                rows=tuple(maybe_rows),
                as_of=as_of,
                live=live,
                provenance=self._answer_provenance(maybe_rows),
                meta=dict(meta),
                domains=domains or None,
            ),
        )

    # -- provenance ---------------------------------------------------------

    def _answer_provenance(
        self, rows: List[Tuple[Any, ...]]
    ) -> Dict[str, Dict[str, Any]]:
        out: Dict[str, Dict[str, Any]] = {}
        for row in rows:
            for value in row:
                if not is_null(value) or value.label in out:
                    continue
                record = self._provenance.get(id(value))
                out[value.label] = dict(record) if record else {}
        return out

    # -- the conditional-table algebra --------------------------------------

    def _eval(self, node: Node) -> Tuple[Tuple[str, ...], List[CRow]]:
        if isinstance(node, Scan):
            relation = self.env.get(node.name)
            if relation is None:  # pragma: no cover - schema() catches first
                raise QueryError(
                    f"unknown relation {node.name!r}",
                    code="E_UNKNOWN_RELATION",
                )
            attrs = relation.schema.attributes
            crows = [
                CRow(tuple(row.values), ALWAYS) for row in relation.rows
            ]
            return attrs, _dedup(crows)

        if isinstance(node, Select):
            attrs, crows = self._eval(node.source)
            positions = {attribute: i for i, attribute in enumerate(attrs)}
            out: List[CRow] = []
            for crow in crows:
                resolved = _pred_cond(node.pred, positions, crow.values)
                combined = all_of([crow.cond, resolved])
                if kleene(combined) is FALSE:
                    continue
                out.append(CRow(crow.values, combined))
            return attrs, out

        if isinstance(node, Project):
            attrs, crows = self._eval(node.source)
            positions = {attribute: i for i, attribute in enumerate(attrs)}
            keep = tuple(positions[attribute] for attribute in node.attributes)
            projected = [
                CRow(tuple(crow.values[i] for i in keep), crow.cond)
                for crow in crows
            ]
            return node.attributes, _dedup(projected)

        if isinstance(node, Join):
            left_attrs, left_rows = self._eval(node.left)
            right_attrs, right_rows = self._eval(node.right)
            shared = [a for a in left_attrs if a in right_attrs]
            extra = [a for a in right_attrs if a not in left_attrs]
            attrs = left_attrs + tuple(extra)
            left_pos = {a: i for i, a in enumerate(left_attrs)}
            right_pos = {a: i for i, a in enumerate(right_attrs)}
            shared_l = [left_pos[a] for a in shared]
            shared_r = [right_pos[a] for a in shared]
            extra_r = [right_pos[a] for a in extra]
            out: List[CRow] = []

            def emit(lrow: CRow, rrow: CRow) -> None:
                conds = [lrow.cond, rrow.cond]
                values = list(lrow.values)
                for i, j in zip(shared_l, shared_r):
                    lv = lrow.values[i]
                    rv = rrow.values[j]
                    if lv is not rv:
                        conds.append(EqV(lv, rv))
                    # given the equality holds, the two cells are one
                    # value; prefer the constant representative
                    if is_null(lv) and not is_null(rv):
                        values[i] = rv
                values.extend(rrow.values[j] for j in extra_r)
                combined = all_of(conds)
                if kleene(combined) is FALSE:
                    return
                out.append(CRow(tuple(values), combined))

            if self.hash_joins and shared:
                # bucket right rows by their constant shared-key tuple;
                # rows with a null in a shared cell can never be refuted
                # by a constant mismatch, so they are wildcards every
                # left row must still see.  Merging the bucket hits with
                # the wildcards in ascending row index reproduces the
                # nested loop's pair order exactly, so the output —
                # values, conditions, dedup merges — is bit-identical.
                buckets: Dict[Tuple[Any, ...], List[int]] = {}
                wildcards: List[int] = []
                for index, rrow in enumerate(right_rows):
                    cells = tuple(rrow.values[j] for j in shared_r)
                    if any(is_null(cell) for cell in cells):
                        wildcards.append(index)
                    else:
                        buckets.setdefault(cells, []).append(index)
                for lrow in left_rows:
                    cells = tuple(lrow.values[i] for i in shared_l)
                    if any(is_null(cell) for cell in cells):
                        for rrow in right_rows:
                            emit(lrow, rrow)
                        continue
                    for index in _merge_indices(
                        buckets.get(cells, ()), wildcards
                    ):
                        emit(lrow, right_rows[index])
            else:
                for lrow in left_rows:
                    for rrow in right_rows:
                        emit(lrow, rrow)
            return attrs, _dedup(out)

        if isinstance(node, Rename):
            attrs, crows = self._eval(node.source)
            mapping = dict(node.mapping)
            return tuple(mapping.get(a, a) for a in attrs), crows

        if isinstance(node, Union):
            left_attrs, left_rows = self._eval(node.left)
            _, right_rows = self._eval(node.right)
            return left_attrs, _dedup(left_rows + right_rows)

        if isinstance(node, Difference):
            left_attrs, left_rows = self._eval(node.left)
            _, right_rows = self._eval(node.right)
            out = []
            for lrow in left_rows:
                parts: List[Cond] = [lrow.cond]
                for rrow in right_rows:
                    matches = all_of(
                        [rrow.cond]
                        + [
                            EqV(lv, rv)
                            for lv, rv in zip(lrow.values, rrow.values)
                            if lv is not rv
                        ]
                    )
                    parts.append(neg(matches))
                combined = all_of(parts)
                if kleene(combined) is FALSE:
                    continue
                out.append(CRow(lrow.values, combined))
            return left_attrs, _dedup(out)

        if isinstance(node, Empty):
            return tuple(node.attributes), []

        raise QueryError(f"not a query node: {node!r}")


def _merge_indices(first: Sequence[int], second: Sequence[int]) -> List[int]:
    """Merge two ascending index lists, preserving ascending order."""
    merged: List[int] = []
    i = j = 0
    while i < len(first) and j < len(second):
        if first[i] < second[j]:
            merged.append(first[i])
            i += 1
        else:
            merged.append(second[j])
            j += 1
    merged.extend(first[i:])
    merged.extend(second[j:])
    return merged


def _dedup(crows: List[CRow]) -> List[CRow]:
    """Set semantics: merge identical tuples, disjoining their conditions.

    Identity-keyed for nulls — two *different* nulls with equal ground
    values collapse per-completion instead, when the ground answer sets
    are formed.  Merging conditions with :func:`any_of` is where
    least-extension evaluation gains power: disjuncts that jointly
    exhaust a domain make a merged row certain.
    """
    order: List[Tuple[Any, ...]] = []
    merged: Dict[Tuple[Any, ...], CRow] = {}
    for crow in crows:
        key = _row_key(crow.values)
        existing = merged.get(key)
        if existing is None:
            merged[key] = crow
            order.append(key)
        elif existing.cond != crow.cond:
            merged[key] = CRow(
                existing.values, any_of([existing.cond, crow.cond])
            )
    return [merged[key] for key in order]


def _pred_cond(
    pred: Pred, positions: Mapping[str, int], values: Tuple[Any, ...]
) -> Cond:
    """Resolve a row predicate into a value-level condition."""
    if isinstance(pred, Eq):
        return EqV(values[positions[pred.attribute]], pred.constant)
    if isinstance(pred, In):
        cell = values[positions[pred.attribute]]
        return any_of([EqV(cell, constant) for constant in pred.constants])
    if isinstance(pred, AttrEq):
        first = values[positions[pred.first]]
        second = values[positions[pred.second]]
        if first is second:
            return ALWAYS
        return EqV(first, second)
    if isinstance(pred, NotP):
        return neg(_pred_cond(pred.operand, positions, values))
    if isinstance(pred, AndP):
        return all_of(
            [_pred_cond(p, positions, values) for p in pred.operands]
        )
    if isinstance(pred, OrP):
        return any_of(
            [_pred_cond(p, positions, values) for p in pred.operands]
        )
    raise QueryError(f"not a predicate: {pred!r}")


def evaluate(
    node: Node,
    env: Mapping[str, Relation],
    mode: str = MODE_LEAST,
    limit: int = DEFAULT_LIMIT,
    as_of: Any = None,
    live: bool = True,
) -> ResultSet:
    """One-shot evaluation: build an :class:`Evaluator` and run."""
    return Evaluator(env, limit=limit).run(
        node, mode=mode, as_of=as_of, live=live
    )


def ground_answers(
    node: Node,
    env: Mapping[str, Relation],
    limit: int = DEFAULT_LIMIT,
) -> Tuple[FrozenSet[Tuple[Any, ...]], FrozenSet[Tuple[Any, ...]]]:
    """The fully ground ``(certain, possible)`` answer sets.

    * a ground tuple is **possible** iff some grounding of the nulls its
      conditional row references puts it in the result;
    * it is **certain** iff *every* grounding of the nulls referenced by
      its membership formula ``F_t = ⋁_rows (cond ∧ values = t)`` makes
      ``F_t`` true (nulls the formula never mentions cannot change it,
      so quantifying over just the referenced ones is exact).

    This is what the randomized differential suite compares against
    brute-force completion enumeration — note it shares no code path
    with that oracle, only the domain convention
    (:meth:`~repro.core.relation.Relation.enumeration_domain`).
    """
    evaluator = Evaluator(env, limit=limit)
    _, crows = evaluator.symbolic(node)
    possible: set = set()
    for crow in crows:
        mentioned: Dict[int, Null] = {
            id(value): value for value in crow.values if is_null(value)
        }
        for null_obj in nulls_of(crow.cond):
            mentioned.setdefault(id(null_obj), null_obj)
        nulls = tuple(mentioned.values())
        for binding in groundings(nulls, evaluator.domains, limit=limit):
            if not evaluate_ground(crow.cond, binding):
                continue
            possible.add(
                tuple(
                    binding[id(value)] if is_null(value) else value
                    for value in crow.values
                )
            )
    certain: set = set()
    for candidate in possible:
        membership = any_of(
            [
                all_of(
                    [crow.cond]
                    + [
                        EqV(value, constant)
                        for value, constant in zip(crow.values, candidate)
                        if value is not constant
                    ]
                )
                for crow in crows
            ]
        )
        if least_truth(membership, evaluator.domains, limit=limit) is TRUE:
            certain.add(candidate)
    return frozenset(certain), frozenset(possible)
