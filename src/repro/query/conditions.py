"""Constraint formulas over null/constant equalities — the evaluator's
conditional-table kernel.

Each derived row the evaluator produces carries a :class:`Cond`: the
constraint under which the row is in the query result.  Atoms are
equalities between *values* (constants or :class:`~repro.core.values.Null`
objects — not attributes: by the time a condition is built, attribute
references have been resolved against a concrete row).  Conditions
compose with :func:`all_of` / :func:`any_of` / :func:`neg`.

Two evaluations are provided, mirroring :mod:`repro.nullsem.queries`:

* :func:`kleene` — truth-functional three-valued evaluation; linear,
  sound, under-informative (a condition whose disjuncts exhaust a
  domain still reads *unknown*);
* :func:`least_truth` — the exact least-extension value: the lub of the
  two-valued evaluations over every grounding of the nulls the
  condition references, each null ranging over its (finite) domain.
  Exponential only in the *referenced* nulls, never in the instance.

Groundings respect null identity: one choice per distinct null object,
wherever it occurs — which is exactly how shared nulls equate across a
join.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Mapping, Sequence, Tuple

from ..core.truth import FALSE, TRUE, UNKNOWN, TruthValue, and_, from_bool, not_, or_
from ..core.values import Null, is_null
from ..errors import DomainError


class Cond:
    """Base class for row conditions."""

    __slots__ = ()


@dataclass(frozen=True)
class TrueCond(Cond):
    """The vacuous condition (a base row before any select)."""

    __slots__ = ()


@dataclass(frozen=True)
class EqV(Cond):
    """``first = second`` between two resolved values."""

    __slots__ = ("first", "second")
    first: Any
    second: Any


@dataclass(frozen=True)
class Neg(Cond):
    __slots__ = ("operand",)
    operand: Cond


@dataclass(frozen=True)
class All(Cond):
    __slots__ = ("operands",)
    operands: Tuple[Cond, ...]


@dataclass(frozen=True)
class AnyOf(Cond):
    __slots__ = ("operands",)
    operands: Tuple[Cond, ...]


ALWAYS = TrueCond()
#: a canonical unsatisfiable condition (an impossible equality between
#: two distinct marker constants; cheap for :func:`kleene` to refute)
NEVER = Neg(TrueCond())


def all_of(operands: Sequence[Cond]) -> Cond:
    """Conjunction, flattened and pruned by the Kleene value of parts."""
    flat: List[Cond] = []
    for operand in operands:
        if isinstance(operand, TrueCond):
            continue
        if isinstance(operand, All):
            flat.extend(operand.operands)
        else:
            flat.append(operand)
    if not flat:
        return ALWAYS
    if len(flat) == 1:
        return flat[0]
    return All(tuple(flat))


def any_of(operands: Sequence[Cond]) -> Cond:
    """Disjunction, flattened."""
    flat: List[Cond] = []
    for operand in operands:
        if isinstance(operand, AnyOf):
            flat.extend(operand.operands)
        else:
            flat.append(operand)
    if not flat:
        return NEVER
    if len(flat) == 1:
        return flat[0]
    return AnyOf(tuple(flat))


def neg(operand: Cond) -> Cond:
    if isinstance(operand, Neg):
        return operand.operand
    return Neg(operand)


def kleene(cond: Cond) -> TruthValue:
    """Truth-functional three-valued evaluation of a condition."""
    if isinstance(cond, TrueCond):
        return TRUE
    if isinstance(cond, EqV):
        first, second = cond.first, cond.second
        if first is second:
            return TRUE  # same constant or the *same* unknown
        if is_null(first) or is_null(second):
            return UNKNOWN
        return from_bool(first == second)
    if isinstance(cond, Neg):
        return not_(kleene(cond.operand))
    if isinstance(cond, All):
        return and_(*(kleene(op) for op in cond.operands))
    if isinstance(cond, AnyOf):
        return or_(*(kleene(op) for op in cond.operands))
    raise TypeError(f"not a condition: {cond!r}")


def nulls_of(cond: Cond) -> Tuple[Null, ...]:
    """Every null object the condition references, first-occurrence order."""
    seen: Dict[int, Null] = {}

    def walk(node: Cond) -> None:
        if isinstance(node, EqV):
            for value in (node.first, node.second):
                if is_null(value):
                    seen.setdefault(id(value), value)
        elif isinstance(node, Neg):
            walk(node.operand)
        elif isinstance(node, (All, AnyOf)):
            for op in node.operands:
                walk(op)

    walk(cond)
    return tuple(seen.values())


def evaluate_ground(cond: Cond, binding: Mapping[int, Any]) -> bool:
    """Two-valued evaluation under a total grounding of the nulls.

    ``binding`` maps ``id(null)`` → constant; every null the condition
    references must be bound.
    """
    if isinstance(cond, TrueCond):
        return True
    if isinstance(cond, EqV):
        first = binding[id(cond.first)] if is_null(cond.first) else cond.first
        second = (
            binding[id(cond.second)] if is_null(cond.second) else cond.second
        )
        return first == second
    if isinstance(cond, Neg):
        return not evaluate_ground(cond.operand, binding)
    if isinstance(cond, All):
        return all(evaluate_ground(op, binding) for op in cond.operands)
    if isinstance(cond, AnyOf):
        return any(evaluate_ground(op, binding) for op in cond.operands)
    raise TypeError(f"not a condition: {cond!r}")


def groundings(
    nulls: Sequence[Null],
    domains: Mapping[int, Sequence[Any]],
    limit: int = 200_000,
) -> Iterator[Dict[int, Any]]:
    """Every binding of the given nulls over their domains.

    ``domains`` maps ``id(null)`` → candidate constants (the
    evaluator's globally-intersected per-null domains).  ``limit``
    guards combinatorial blow-ups the way
    :meth:`~repro.core.relation.Relation.completions` does: a
    :class:`~repro.errors.DomainError` *before* enumeration starts.
    """
    pools: List[Sequence[Any]] = []
    total = 1
    for null_obj in nulls:
        pool = domains.get(id(null_obj))
        if pool is None:
            raise DomainError(
                f"null {null_obj!r} has no enumeration domain (it does not "
                "occur in any scanned relation)"
            )
        if not pool:
            raise DomainError(
                f"null {null_obj!r} has an empty consistent domain (its "
                "occurrences intersect to nothing)"
            )
        pools.append(pool)
        total *= len(pool)
        if total > limit:
            raise DomainError(
                f"grounding enumeration would exceed {limit} bindings"
            )
    keys = [id(null_obj) for null_obj in nulls]
    for combo in itertools.product(*pools):
        yield dict(zip(keys, combo))


def least_truth(
    cond: Cond,
    domains: Mapping[int, Sequence[Any]],
    limit: int = 200_000,
) -> TruthValue:
    """Exact least-extension truth of a condition.

    The lub over all groundings of the referenced nulls, with the early
    exit of :func:`repro.nullsem.queries.evaluate_least_extension`:
    once both a true and a false grounding are seen the answer is
    *unknown*.  A Kleene-definite condition is returned directly — the
    invariant that Kleene agrees wherever it is definite is tested, so
    this is a pure fast path.
    """
    quick = kleene(cond)
    if quick is not UNKNOWN:
        return quick
    nulls = nulls_of(cond)
    saw_true = saw_false = False
    for binding in groundings(nulls, domains, limit=limit):
        if evaluate_ground(cond, binding):
            saw_true = True
        else:
            saw_false = True
        if saw_true and saw_false:
            return UNKNOWN
    if saw_true and not saw_false:
        return TRUE
    if saw_false and not saw_true:
        return FALSE
    # no grounding at all can only happen with zero referenced nulls,
    # which the Kleene fast path already decided
    return UNKNOWN  # pragma: no cover
