"""The interactive query shell behind ``repro query --repl``.

A thin, fully testable loop: :class:`QueryRepl` holds the environment
(name → relation), the evaluation mode, and the bindings accumulated by
``name = expr`` lines; :meth:`QueryRepl.execute` turns one input line
into one block of output text, so tests (and the CLI's ``-e`` /
``--script`` paths) drive it without a terminal.

Dot-commands::

    .help                 this text
    .relations            list the queryable relations
    .schema NAME          one relation's attributes and domains
    .mode [kleene|least]  show or switch the evaluation mode
    .quit                 leave the shell

``explain Q`` prints the optimized plan for ``Q`` (inferred keys, join
strategies, fired rewrites) without evaluating it.
"""

from __future__ import annotations

from typing import Any, Dict, IO, Iterable, List, Mapping, Optional

from ..api import ResultSet
from ..core.relation import Relation
from ..core.values import is_null
from ..errors import DomainError, ReproError
from .algebra import Node
from .evaluate import MODE_KLEENE, MODE_LEAST, Evaluator
from .parser import parse_statement

_HELP = """\
Enter a query (e.g.  emp where dept = 'sales' [name])  or bind one
(ans = emp join dept_mgr).  Operators: where, [attrs], rename a -> b,
join, union, minus.  `explain Q` shows Q's optimized plan without
running it.  Dot-commands: .help .relations .schema NAME
.mode [kleene|least] .quit"""


def render_value(value: Any) -> str:
    """One cell: constants verbatim, nulls by label (⊥-prefixed)."""
    if is_null(value):
        return repr(value)
    return str(value)


def render_result(result: ResultSet) -> str:
    """A fixed-width table of both answer sets, tagged per row."""
    attributes = result.attributes
    body: List[tuple] = [
        *((row, "certain") for row in result.certain.rows),
        *((row, "maybe") for row in result.maybe.rows),
    ]
    header = list(attributes)
    rendered = [
        [render_value(value) for value in row] + [tag] for row, tag in body
    ]
    widths = [
        max(len(header[i]), *(len(line[i]) for line in rendered))
        if rendered
        else len(header[i])
        for i in range(len(header))
    ]
    lines = [
        "  ".join(name.ljust(widths[i]) for i, name in enumerate(header)),
        "  ".join("-" * width for width in widths),
    ]
    for line in rendered:
        cells = [line[i].ljust(widths[i]) for i in range(len(header))]
        cells.append(line[-1])
        lines.append("  ".join(cells))
    summary = (
        f"({len(result.certain.rows)} certain, "
        f"{len(result.maybe.rows)} maybe"
    )
    if result.as_of is not None:
        summary += f"; as_of={result.as_of}"
    summary += ")"
    lines.append(summary)
    return "\n".join(lines)


class QueryRepl:
    """One shell session: environment + mode + accumulated bindings."""

    def __init__(
        self,
        env: Mapping[str, Relation],
        mode: str = MODE_LEAST,
        fds: Optional[Mapping[str, Any]] = None,
        optimize: bool = True,
    ) -> None:
        self.env = dict(env)
        self.mode = mode
        self.fds = fds
        self.optimize = optimize
        self.bindings: Dict[str, Node] = {}
        self.done = False

    def _evaluator(self) -> Evaluator:
        return Evaluator(self.env, fds=self.fds, optimize=self.optimize)

    # -- one line in, one block of text out ---------------------------------

    def execute(self, line: str) -> str:
        stripped = line.strip()
        if stripped.startswith("."):
            return self._command(stripped)
        try:
            parts = stripped.split(None, 1)
            head = parts[0] if parts else ""
            rest = parts[1] if len(parts) > 1 else ""
            # `explain = q` is still a binding of the name "explain"
            if head == "explain" and not rest.lstrip().startswith("="):
                if not rest.strip():
                    return "usage: explain QUERY"
                statement = parse_statement(rest, self.bindings)
                if statement.kind == "blank" or statement.node is None:
                    return "usage: explain QUERY"
                return self._evaluator().explain(
                    statement.node, mode=self.mode
                )
            statement = parse_statement(line, self.bindings)
            if statement.kind == "blank":
                return ""
            assert statement.node is not None
            result = self._evaluator().run(statement.node, mode=self.mode)
            if statement.kind == "bind":
                assert statement.name is not None
                self.bindings[statement.name] = statement.node
                return (
                    f"{statement.name} = "
                    f"({len(result.certain.rows)} certain, "
                    f"{len(result.maybe.rows)} maybe)"
                )
            return render_result(result)
        except DomainError as error:
            return f"domain error: {error}"
        except ReproError as error:
            return f"error: {error}"

    def _command(self, command: str) -> str:
        parts = command.split()
        word, args = parts[0], parts[1:]
        if word in (".quit", ".exit"):
            self.done = True
            return ""
        if word == ".help":
            return _HELP
        if word == ".relations":
            if not self.env:
                return "(no relations)"
            return "\n".join(
                f"{name}({', '.join(rel.schema.attributes)}) — "
                f"{len(rel.rows)} rows, {rel.null_count()} null cells"
                for name, rel in sorted(self.env.items())
            )
        if word == ".schema":
            if not args:
                return "usage: .schema NAME"
            relation = self.env.get(args[0])
            if relation is None:
                return f"error: unknown relation {args[0]!r}"
            lines = []
            for attribute in relation.schema.attributes:
                domain = relation.schema.domain(attribute)
                extent = (
                    f"{{{', '.join(str(v) for v in domain)}}}"
                    if domain.is_finite
                    else "unbounded"
                )
                lines.append(f"{attribute}: {extent}")
            return "\n".join(lines)
        if word == ".mode":
            if not args:
                return f"mode: {self.mode}"
            if args[0] not in (MODE_KLEENE, MODE_LEAST):
                return f"error: unknown mode {args[0]!r} (kleene|least)"
            self.mode = args[0]
            return f"mode: {self.mode}"
        return f"error: unknown command {word!r} (try .help)"


def run_repl(
    env: Mapping[str, Relation],
    lines: Iterable[str],
    out: IO[str],
    mode: str = MODE_LEAST,
    prompt: Optional[str] = None,
    fds: Optional[Mapping[str, Any]] = None,
    optimize: bool = True,
) -> QueryRepl:
    """Feed ``lines`` through a shell, writing each block to ``out``.

    The CLI passes a stdin iterator and a prompt; tests pass a list and
    capture ``out``.  Returns the shell so callers can inspect state.
    """
    repl = QueryRepl(env, mode=mode, fds=fds, optimize=optimize)
    if prompt:
        out.write(prompt)
        out.flush()
    for line in lines:
        block = repl.execute(line)
        if block:
            out.write(block + "\n")
        if repl.done:
            break
        if prompt:
            out.write(prompt)
            out.flush()
    return repl
