"""``repro.query`` — relational algebra over incomplete instances.

The paper's Section 2 gives exact *least-extension* semantics for
queries over instances with nulls; :mod:`repro.nullsem.queries` has
implemented it for one-row predicates since the seed.  This package
turns that kernel into a usable query layer:

* :mod:`~repro.query.algebra` — the operator AST
  (``select``/``project``/``join``/``union``/``difference``/``rename``)
  and its static schema checker;
* :mod:`~repro.query.conditions` — the condition kernel the evaluator
  threads through the algebra: per-derived-row constraint formulas over
  null/constant equalities, evaluated Kleene-style (linear,
  under-informative) or by least-extension grounding (exact, local);
* :mod:`~repro.query.evaluate` — the evaluator: **certain** answers
  (rows in the query result under *every* completion of the database)
  and **maybe** answers (under *some* completion), with nulls
  propagated by identity so a null shared across relations equates
  across a join; plus the ground answer sets the differential test
  suite compares against brute-force completion enumeration;
* :mod:`~repro.query.optimize` — the static planner: bottom-up fact
  inference (schemas, null-flow, verified value supersets, FD/key
  propagation, grounding-space bounds) feeding proved-equivalent
  rewrites (select/projection pushdown, tautology/contradiction
  elimination, cross-product fusion) and ``EXPLAIN`` rendering;
* :mod:`~repro.query.parser` — the concrete syntax behind ``repro
  query`` and the REPL;
* :mod:`~repro.query.repl` — the interactive shell.

Answers are :class:`repro.api.ResultSet` objects — materializable as
relations and usable as chase/session inputs.
"""

from .algebra import (
    Difference,
    Empty,
    Join,
    Node,
    Project,
    QueryError,
    Rename,
    Scan,
    Select,
    Union,
    output_schema,
    relation_names,
)
from .evaluate import (
    MODE_KLEENE,
    MODE_LEAST,
    Evaluator,
    evaluate,
    ground_answers,
)
from .optimize import (
    Plan,
    PlanInfo,
    RelationStats,
    analyze,
    collect_stats,
    optimize_tree,
    render_plan,
)
from .parser import QueryParseError, parse_query, parse_statement

__all__ = [
    "Difference",
    "Empty",
    "Evaluator",
    "Join",
    "MODE_KLEENE",
    "MODE_LEAST",
    "Node",
    "Plan",
    "PlanInfo",
    "Project",
    "QueryError",
    "QueryParseError",
    "RelationStats",
    "Rename",
    "Scan",
    "Select",
    "Union",
    "analyze",
    "collect_stats",
    "evaluate",
    "ground_answers",
    "optimize_tree",
    "output_schema",
    "parse_query",
    "parse_statement",
    "relation_names",
    "render_plan",
]
