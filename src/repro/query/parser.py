"""Concrete syntax for ``repro query`` and the REPL.

A small, fully parenthesizable algebra notation::

    emp                              scan the relation ``emp``
    emp where dept = 'sales'         select (three-valued predicate)
    emp[name, dept]                  project
    emp join dept_mgr                natural join
    emp rename dept -> unit          rename
    a union b,  a minus b            set union / difference
    ans = emp where salary = 30      bind an intermediate (scripts/REPL)

A query is a left-to-right *pipeline*: ``where``, ``[...]``,
``rename`` and ``join`` each apply to everything parsed so far, so
``emp join mgr [name] where boss = 'carol'`` projects and then filters
the join.  Only ``union`` / ``minus`` bind looser, and parentheses are
free everywhere (``emp join (mgr[dept])`` scopes the projection to one
operand).  Predicates are the
:mod:`repro.nullsem.queries` vocabulary — ``A = 'x'``, ``A != 'x'``,
``A = B`` (a bare name on the right reads as an attribute), ``A in
('x', 'y')``, combined with ``and`` / ``or`` / ``not``.  Quoted values
are strings; bare numerals are numbers.

Bindings are inlined at parse time: ``parse_query(text, bindings)``
splices a bound name's tree wherever it is scanned, so the bound
query's *conditions* survive — materializing an intermediate as a plain
relation would forget under which completions its maybe-rows exist.
"""

from __future__ import annotations

import re
from typing import Any, Dict, List, Mapping, NamedTuple, Optional, Tuple

from ..errors import ReproError
from ..nullsem.queries import AndP, AttrEq, Eq, In, NotP, OrP, Pred
from .algebra import (
    Difference,
    Join,
    Node,
    Project,
    Rename,
    Scan,
    Select,
    Union,
)


class QueryParseError(ReproError):
    """A syntactically malformed query; ``column`` is 1-based."""

    def __init__(self, message: str, column: int = 0) -> None:
        if column:
            message = f"{message} (column {column})"
        super().__init__(message)
        self.column = column
        self.code = "E_BAD_REQUEST"


_KEYWORDS = {
    "union", "minus", "join", "where", "rename", "in", "and", "or", "not",
}

_TOKEN = re.compile(
    r"""\s*(?:
        (?P<name>[A-Za-z_][A-Za-z0-9_]*)
      | (?P<number>-?\d+(?:\.\d+)?)
      | (?P<string>'(?:[^'\\]|\\.)*'|"(?:[^"\\]|\\.)*")
      | (?P<symbol>!=|->|[=\[\](),])
    )""",
    re.VERBOSE,
)


class _Token(NamedTuple):
    kind: str  # "name" | "number" | "string" | "symbol" | "end"
    text: str
    column: int  # 1-based


def _tokenize(text: str) -> List[_Token]:
    tokens: List[_Token] = []
    position = 0
    while position < len(text):
        match = _TOKEN.match(text, position)
        if match is None:
            rest = text[position:].lstrip()
            if not rest:
                break
            at = position + (len(text[position:]) - len(rest))
            raise QueryParseError(f"cannot read {rest[:12]!r}", column=at + 1)
        position = match.end()
        for kind in ("name", "number", "string", "symbol"):
            captured = match.group(kind)
            if captured is not None:
                tokens.append(_Token(kind, captured, match.start(kind) + 1))
                break
    tokens.append(_Token("end", "", len(text) + 1))
    return tokens


class _Parser:
    def __init__(
        self, text: str, bindings: Optional[Mapping[str, Node]] = None
    ) -> None:
        self.tokens = _tokenize(text)
        self.index = 0
        self.bindings = dict(bindings or {})

    # -- cursor helpers ------------------------------------------------------

    @property
    def current(self) -> _Token:
        return self.tokens[self.index]

    def _advance(self) -> _Token:
        token = self.current
        self.index += 1
        return token

    def _at_keyword(self, *words: str) -> bool:
        token = self.current
        return token.kind == "name" and token.text.lower() in words

    def _at_symbol(self, *symbols: str) -> bool:
        token = self.current
        return token.kind == "symbol" and token.text in symbols

    def _expect_symbol(self, symbol: str) -> None:
        if not self._at_symbol(symbol):
            raise QueryParseError(
                f"expected {symbol!r}, found "
                f"{self.current.text or 'end of input'!r}",
                column=self.current.column,
            )
        self._advance()

    def _expect_name(self, what: str) -> _Token:
        token = self.current
        if token.kind != "name" or token.text.lower() in _KEYWORDS:
            raise QueryParseError(
                f"expected {what}, found {token.text or 'end of input'!r}",
                column=token.column,
            )
        return self._advance()

    # -- expression grammar --------------------------------------------------

    def parse(self) -> Node:
        node = self.expr()
        if self.current.kind != "end":
            raise QueryParseError(
                f"unexpected {self.current.text!r} after the query",
                column=self.current.column,
            )
        return node

    def expr(self) -> Node:
        node = self.pipeline()
        while self._at_keyword("union", "minus"):
            word = self._advance().text.lower()
            right = self.pipeline()
            node = Union(node, right) if word == "union" else Difference(
                node, right
            )
        return node

    def pipeline(self) -> Node:
        node = self.atom()
        while True:
            if self._at_keyword("join"):
                self._advance()
                node = Join(node, self.atom())
            elif self._at_symbol("["):
                self._advance()
                attrs = [self._expect_name("an attribute").text]
                while self._at_symbol(","):
                    self._advance()
                    attrs.append(self._expect_name("an attribute").text)
                self._expect_symbol("]")
                node = Project(node, tuple(attrs))
            elif self._at_keyword("where"):
                self._advance()
                node = Select(node, self.pred_or())
            elif self._at_keyword("rename"):
                self._advance()
                pairs = [self._rename_pair()]
                while self._at_symbol(","):
                    self._advance()
                    pairs.append(self._rename_pair())
                node = Rename(node, tuple(pairs))
            else:
                return node

    def _rename_pair(self) -> Tuple[str, str]:
        old = self._expect_name("an attribute").text
        if not self._at_symbol("->"):
            raise QueryParseError(
                f"expected '->' after {old!r} in rename",
                column=self.current.column,
            )
        self._advance()
        new = self._expect_name("an attribute").text
        return old, new

    def atom(self) -> Node:
        if self._at_symbol("("):
            self._advance()
            node = self.expr()
            self._expect_symbol(")")
            return node
        token = self._expect_name("a relation name")
        bound = self.bindings.get(token.text)
        if bound is not None:
            return bound
        return Scan(token.text)

    # -- predicate grammar ---------------------------------------------------

    def pred_or(self) -> Pred:
        node = self.pred_and()
        parts = [node]
        while self._at_keyword("or"):
            self._advance()
            parts.append(self.pred_and())
        return parts[0] if len(parts) == 1 else OrP(tuple(parts))

    def pred_and(self) -> Pred:
        parts = [self.pred_unary()]
        while self._at_keyword("and"):
            self._advance()
            parts.append(self.pred_unary())
        return parts[0] if len(parts) == 1 else AndP(tuple(parts))

    def pred_unary(self) -> Pred:
        if self._at_keyword("not"):
            self._advance()
            return NotP(self.pred_unary())
        if self._at_symbol("("):
            self._advance()
            node = self.pred_or()
            self._expect_symbol(")")
            return node
        return self.pred_atom()

    def pred_atom(self) -> Pred:
        attribute = self._expect_name("an attribute").text
        if self._at_keyword("in"):
            self._advance()
            self._expect_symbol("(")
            constants = [self._constant()]
            while self._at_symbol(","):
                self._advance()
                constants.append(self._constant())
            self._expect_symbol(")")
            return In(attribute, tuple(constants))
        if self._at_symbol("=", "!="):
            operator = self._advance().text
            token = self.current
            if token.kind == "name" and token.text.lower() not in _KEYWORDS:
                self._advance()
                base: Pred = AttrEq(attribute, token.text)
            else:
                base = Eq(attribute, self._constant())
            return NotP(base) if operator == "!=" else base
        raise QueryParseError(
            f"expected '=', '!=' or 'in' after {attribute!r}, found "
            f"{self.current.text or 'end of input'!r}",
            column=self.current.column,
        )

    def _constant(self) -> Any:
        token = self.current
        if token.kind == "string":
            self._advance()
            body = token.text[1:-1]
            return re.sub(r"\\(.)", r"\1", body)
        if token.kind == "number":
            self._advance()
            return float(token.text) if "." in token.text else int(token.text)
        raise QueryParseError(
            f"expected a constant, found {token.text or 'end of input'!r} "
            "(quote strings: 'value')",
            column=token.column,
        )


class Statement(NamedTuple):
    """One parsed script/REPL line.

    ``kind`` is ``"blank"`` (empty line or ``#`` comment; ``node`` is
    None), ``"bind"`` (``name = expr``; evaluate and remember), or
    ``"query"`` (a bare expression to evaluate and show).
    """

    kind: str
    name: Optional[str]
    node: Optional[Node]


_BIND = re.compile(r"^\s*([A-Za-z_][A-Za-z0-9_]*)\s*=\s*(.+)$")


def parse_query(
    text: str, bindings: Optional[Mapping[str, Node]] = None
) -> Node:
    """Parse one query expression (bound names spliced in)."""
    return _Parser(text, bindings).parse()


def parse_statement(
    line: str, bindings: Optional[Mapping[str, Node]] = None
) -> Statement:
    """Parse one script line: blank/comment, binding, or query."""
    stripped = line.strip()
    if not stripped or stripped.startswith("#"):
        return Statement("blank", None, None)
    match = _BIND.match(stripped)
    if match and match.group(1).lower() not in _KEYWORDS:
        name, body = match.group(1), match.group(2)
        # ``a = b`` could open a predicate only inside ``where``; at
        # statement level a leading NAME '=' is always a binding.
        return Statement("bind", name, parse_query(body, bindings))
    return Statement("query", None, parse_query(stripped, bindings))
