"""FD-aware static analysis and proved-equivalent rewriting of query trees.

Two layers over the :mod:`~repro.query.algebra` AST, both purely static
(no conditional row is ever built here):

* **analysis** — :func:`analyze` propagates inferred facts bottom-up
  through every node: output scheme, null-flow (which columns can still
  carry a null, per instance statistics), a verified finite *superset*
  of the values each column can take (observed constants ∪ the column's
  enumeration domain — the instance is the authority, since declared
  domains are not enforced on constants), FD sets carried through the
  classical propagation rules (and candidate keys from them), row-count
  bounds, and grounding-space bounds for the conditions least-mode
  evaluation would have to ground.  :class:`PlanInfo` is the annotated
  tree the plan linter (:mod:`repro.analysis.plan`) and ``EXPLAIN``
  read.

* **rewriting** — :func:`optimize_tree` applies equivalence-preserving
  rewrites: select pushdown (through join sides that avoid shared
  attributes, through union arms, into the left side of a difference,
  below projections), projection pushdown (narrowing join inputs to
  needed ∪ shared, through unions, collapsing stacked projections),
  condition simplification (tautology and contradiction elimination,
  gated — see below), :class:`~repro.query.algebra.Empty` cascades, and
  cross-product fusion (reordering a pure cross chain by estimated
  cardinality).  Every fired rewrite is recorded by name on the
  returned :class:`Plan`.

**The gate.**  Tautology/contradiction elimination changes which
conditions the evaluator grounds, so it is only applied when provably
invisible: either every attribute the predicate references is
*definite* (cannot carry a null, so Kleene evaluation is already
two-valued), or the evaluation mode is least-extension (where a
predicate true/false under every grounding is exactly true/false) *and*
the caller vouches that no environment null has an empty consistent
domain (``least_safe`` — otherwise eliminating a condition could mask
the :class:`~repro.errors.DomainError` unoptimized evaluation raises).
Kleene mode keeps conditions over nullable columns untouched: a
domain-exhausting disjunction reads *unknown* there, and rewriting it
away would change answers.

Satisfiability itself reuses the :mod:`~repro.query.conditions`
machinery: the predicate is resolved against a row of fresh nulls (one
per referenced attribute) and ground over small models — the verified
value supersets for domain-level verdicts, mentioned constants plus one
fresh sentinel per attribute for domain-independent ones.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    Any,
    Dict,
    FrozenSet,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from ..core.domain import _FRESH_PREFIX
from ..core.fd import FD, as_fd
from ..core.relation import Relation
from ..core.schema import RelationSchema
from ..core.values import is_null, null
from ..nullsem.queries import (
    AndP,
    AttrEq,
    Eq,
    In,
    NotP,
    OrP,
    Pred,
    referenced_attributes,
)
from .algebra import (
    Difference,
    Empty,
    Join,
    Node,
    Project,
    QueryError,
    Rename,
    Scan,
    Select,
    Union,
    output_schema,
)
from .conditions import evaluate_ground, groundings
from .evaluate import DEFAULT_LIMIT, MODE_LEAST, _pred_cond

#: combinatorial cap on small-model satisfiability enumeration
SAT_LIMIT = 4096

#: cap keeping grounding-space bounds out of bignum territory
_SPACE_CAP = 10**18


def _cap(value: int) -> int:
    return value if value < _SPACE_CAP else _SPACE_CAP


# ---------------------------------------------------------------------------
# instance statistics
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class RelationStats:
    """Per-relation facts the analyzer verifies from the instance."""

    rows: int
    #: attribute → number of null cells in that column
    null_counts: Mapping[str, int]
    #: attribute → size of the column's enumeration domain (what a null
    #: in that column ranges over before global intersection)
    domain_sizes: Mapping[str, int]
    #: attribute → verified finite superset of the column's possible
    #: values: observed constants ∪ the enumeration domain
    pools: Mapping[str, Tuple[Any, ...]]


def relation_stats(relation: Relation) -> RelationStats:
    """Collect :class:`RelationStats` from a live relation."""
    attrs = relation.schema.attributes
    null_counts: Dict[str, int] = {a: 0 for a in attrs}
    observed: Dict[str, Dict[Any, None]] = {a: {} for a in attrs}
    for row in relation.rows:
        for attribute, value in zip(attrs, row.values):
            if is_null(value):
                null_counts[attribute] += 1
            else:
                observed[attribute].setdefault(value)
    domain_sizes: Dict[str, int] = {}
    pools: Dict[str, Tuple[Any, ...]] = {}
    for attribute in attrs:
        enum = tuple(relation.enumeration_domain(attribute))
        domain_sizes[attribute] = len(enum)
        pool = dict.fromkeys(observed[attribute])
        pool.update(dict.fromkeys(enum))
        pools[attribute] = tuple(pool)
    return RelationStats(
        rows=len(relation.rows),
        null_counts=null_counts,
        domain_sizes=domain_sizes,
        pools=pools,
    )


def collect_stats(
    env: Mapping[str, Relation]
) -> Dict[str, RelationStats]:
    """Stats for a whole environment, keyed by relation name."""
    return {name: relation_stats(rel) for name, rel in env.items()}


# ---------------------------------------------------------------------------
# inferred facts
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Facts:
    """What the analyzer knows about one node's output, bottom-up."""

    attrs: Tuple[str, ...]
    #: attributes whose cells may still carry a null
    nullable: FrozenSet[str]
    #: attribute → verified finite value superset, or None (unverified)
    pools: Mapping[str, Optional[Tuple[Any, ...]]]
    #: upper bound on output rows (None without statistics)
    est_rows: Optional[int]
    #: bound on the groundings least mode enumerates per row condition
    ground_space: int
    #: bound on the joint grounding space of every null the subtree scans
    null_space: int
    #: provably produces no row under the analysis gate
    empty: bool
    #: FDs holding in the output (classical propagation)
    fds: Tuple[FD, ...]


class _Ctx:
    """Shared analysis parameters."""

    __slots__ = ("catalog", "stats", "fds", "mode", "limit", "least_safe")

    def __init__(
        self,
        catalog: Mapping[str, RelationSchema],
        stats: Mapping[str, RelationStats],
        fds: Mapping[str, Any],
        mode: str,
        limit: int,
        least_safe: bool,
    ) -> None:
        self.catalog = catalog
        self.stats = stats
        self.fds = fds
        self.mode = mode
        self.limit = limit
        self.least_safe = least_safe

    def facts(self, node: Node) -> Facts:
        children = _children(node)
        return _facts_of(node, [self.facts(c) for c in children], self)


def _children(node: Node) -> Tuple[Node, ...]:
    if isinstance(node, (Scan, Empty)):
        return ()
    if isinstance(node, (Select, Project, Rename)):
        return (node.source,)
    if isinstance(node, (Join, Union, Difference)):
        return (node.left, node.right)
    raise QueryError(f"not a query node: {node!r}")


def _dsize(facts: Facts, attribute: str) -> int:
    """Domain-size bound for a null in this column (2 when unverified)."""
    pool = facts.pools.get(attribute)
    if pool:
        return len(pool)
    return 2


def _project_fd_tuple(
    fds: Tuple[FD, ...], attrs: Tuple[str, ...]
) -> Tuple[FD, ...]:
    if not fds:
        return ()
    try:
        from ..normalization.projection import project_fds

        projected = project_fds(fds, attrs, max_lhs=3)
        return tuple(projected)
    except Exception:  # pragma: no cover - key inference is best-effort
        return ()


def _facts_of(node: Node, children: Sequence[Facts], ctx: _Ctx) -> Facts:
    if isinstance(node, Scan):
        schema = ctx.catalog.get(node.name)
        if schema is None:
            raise QueryError(
                f"unknown relation {node.name!r}", code="E_UNKNOWN_RELATION"
            )
        attrs = schema.attributes
        st = ctx.stats.get(node.name)
        fd_tuple = tuple(as_fd(f) for f in ctx.fds.get(node.name, ()))
        if st is None:
            return Facts(
                attrs=attrs,
                nullable=frozenset(attrs),
                pools={a: None for a in attrs},
                est_rows=None,
                ground_space=1,
                null_space=1,
                empty=False,
                fds=fd_tuple,
            )
        null_space = 1
        for attribute in attrs:
            count = st.null_counts.get(attribute, 0)
            if count:
                size = max(1, st.domain_sizes.get(attribute, 1))
                null_space = _cap(null_space * size**count)
        return Facts(
            attrs=attrs,
            nullable=frozenset(
                a for a in attrs if st.null_counts.get(a, 0)
            ),
            pools={a: st.pools.get(a, ()) for a in attrs},
            est_rows=st.rows,
            ground_space=1,
            null_space=null_space,
            # an instance that happens to be empty is not *statically
            # unsatisfiable* — emptiness here means proved-dead plans
            empty=False,
            fds=fd_tuple,
        )

    if isinstance(node, Empty):
        attrs = tuple(node.attributes)
        return Facts(
            attrs=attrs,
            nullable=frozenset(),
            pools={a: () for a in attrs},
            est_rows=0,
            ground_space=1,
            null_space=1,
            empty=True,
            fds=(),
        )

    if isinstance(node, Select):
        (child,) = children
        space = child.ground_space
        for attribute in referenced_attributes(node.pred):
            if attribute in child.nullable:
                space = _cap(space * _dsize(child, attribute))
        verdict = _select_verdict(node.pred, child, ctx)
        return Facts(
            attrs=child.attrs,
            nullable=child.nullable,
            pools=child.pools,
            est_rows=child.est_rows,
            ground_space=space,
            null_space=child.null_space,
            empty=child.empty or verdict == "contradiction",
            fds=child.fds,
        )

    if isinstance(node, Project):
        (child,) = children
        attrs = tuple(node.attributes)
        return Facts(
            attrs=attrs,
            nullable=child.nullable & frozenset(attrs),
            pools={a: child.pools.get(a) for a in attrs},
            est_rows=child.est_rows,
            ground_space=child.ground_space,
            null_space=child.null_space,
            empty=child.empty,
            fds=_project_fd_tuple(child.fds, attrs),
        )

    if isinstance(node, Join):
        left, right = children
        shared = tuple(a for a in left.attrs if a in right.attrs)
        extra = tuple(a for a in right.attrs if a not in left.attrs)
        attrs = left.attrs + extra
        nullable: Set[str] = set()
        pools: Dict[str, Optional[Tuple[Any, ...]]] = {}
        for attribute in attrs:
            if attribute in shared:
                # output cell is the left value unless the left is null
                # and the right a constant; null only when both are
                if (
                    attribute in left.nullable
                    and attribute in right.nullable
                ):
                    nullable.add(attribute)
                lp = left.pools.get(attribute)
                rp = right.pools.get(attribute)
                if lp is None or rp is None:
                    pools[attribute] = None
                else:
                    merged = dict.fromkeys(lp)
                    merged.update(dict.fromkeys(rp))
                    pools[attribute] = tuple(merged)
            elif attribute in left.attrs:
                if attribute in left.nullable:
                    nullable.add(attribute)
                pools[attribute] = left.pools.get(attribute)
            else:
                if attribute in right.nullable:
                    nullable.add(attribute)
                pools[attribute] = right.pools.get(attribute)
        space = _cap(left.ground_space * right.ground_space)
        for attribute in shared:
            if attribute in left.nullable:
                space = _cap(space * _dsize(left, attribute))
            if attribute in right.nullable:
                space = _cap(space * _dsize(right, attribute))
        est: Optional[int] = None
        if left.est_rows is not None and right.est_rows is not None:
            est = _cap(left.est_rows * right.est_rows)
        seen_fds: Dict[FD, None] = dict.fromkeys(left.fds)
        seen_fds.update(dict.fromkeys(right.fds))
        return Facts(
            attrs=attrs,
            nullable=frozenset(nullable),
            pools=pools,
            est_rows=est,
            ground_space=space,
            null_space=_cap(left.null_space * right.null_space),
            empty=left.empty or right.empty,
            fds=tuple(seen_fds),
        )

    if isinstance(node, Rename):
        (child,) = children
        mapping = dict(node.mapping)
        attrs = tuple(mapping.get(a, a) for a in child.attrs)
        renamed_fds: List[FD] = []
        for fd in child.fds:
            renamed_fds.append(
                FD(
                    tuple(mapping.get(a, a) for a in fd.lhs),
                    tuple(mapping.get(a, a) for a in fd.rhs),
                )
            )
        return Facts(
            attrs=attrs,
            nullable=frozenset(
                mapping.get(a, a) for a in child.nullable
            ),
            pools={
                mapping.get(a, a): child.pools.get(a) for a in child.attrs
            },
            est_rows=child.est_rows,
            ground_space=child.ground_space,
            null_space=child.null_space,
            empty=child.empty,
            fds=tuple(renamed_fds),
        )

    if isinstance(node, Union):
        left, right = children
        pools = {}
        for attribute in left.attrs:
            lp = left.pools.get(attribute)
            rp = right.pools.get(attribute)
            if lp is None or rp is None:
                pools[attribute] = None
            else:
                merged = dict.fromkeys(lp)
                merged.update(dict.fromkeys(rp))
                pools[attribute] = tuple(merged)
        est = None
        if left.est_rows is not None and right.est_rows is not None:
            est = _cap(left.est_rows + right.est_rows)
        return Facts(
            attrs=left.attrs,
            nullable=left.nullable | right.nullable,
            pools=pools,
            est_rows=est,
            ground_space=max(left.ground_space, right.ground_space),
            null_space=_cap(left.null_space * right.null_space),
            empty=left.empty and right.empty,
            fds=(),
        )

    if isinstance(node, Difference):
        left, right = children
        # a surviving left row's condition conjoins, over *every* right
        # row, the negated match formula — so it can reference the left
        # row's own value nulls plus every null the right subtree scans
        row_space = left.ground_space
        for attribute in left.attrs:
            if attribute in left.nullable:
                row_space = _cap(row_space * _dsize(left, attribute))
        return Facts(
            attrs=left.attrs,
            nullable=left.nullable,
            pools=left.pools,
            est_rows=left.est_rows,
            ground_space=_cap(row_space * right.null_space),
            null_space=_cap(left.null_space * right.null_space),
            empty=left.empty,
            fds=left.fds,
        )

    raise QueryError(f"not a query node: {node!r}")


# ---------------------------------------------------------------------------
# predicate satisfiability over small models (via conditions.py)
# ---------------------------------------------------------------------------


def _mentioned_constants(pred: Pred) -> Tuple[Any, ...]:
    seen: Dict[Any, None] = {}

    def walk(p: Pred) -> None:
        if isinstance(p, Eq):
            seen.setdefault(p.constant)
        elif isinstance(p, In):
            for constant in p.constants:
                seen.setdefault(constant)
        elif isinstance(p, NotP):
            walk(p.operand)
        elif isinstance(p, (AndP, OrP)):
            for operand in p.operands:
                walk(operand)

    walk(pred)
    return tuple(seen)


class _Sentinel:
    """A fresh value distinct from every constant and every other sentinel."""

    __slots__ = ()


def _is_open_pool(pool: Sequence[Any]) -> bool:
    """True when a pool is an equality-pattern surrogate, not a closed set.

    Columns without a declared finite domain enumerate over
    ``effective_domain``'s fresh symbols.  A fresh symbol realizes "some
    value different from these" — sound for equality *patterns*, but not
    a verified membership superset: deciding ``B = 'b1'`` against it
    would brand every constant the instance hasn't seen yet a
    contradiction (and the plan linter would refuse queries over
    still-empty relations).  Satisfiability verdicts therefore only use
    pools with no fresh symbols — in practice, declared finite domains —
    which also keeps ``E_EMPTY_CERTAIN`` instance-independent.
    """
    return any(
        isinstance(value, str) and value.startswith(_FRESH_PREFIX)
        for value in pool
    )


def _pred_profile(
    pred: Pred, pools: Mapping[str, Sequence[Any]], limit: int = SAT_LIMIT
) -> Optional[Tuple[bool, bool]]:
    """``(saw_true, saw_false)`` of the two-valued predicate over the
    product of per-attribute pools, or None when undecidable (a pool is
    empty or the product exceeds ``limit``).

    The predicate is resolved against a row of fresh nulls — one per
    attribute — through the evaluator's own
    :func:`~repro.query.evaluate._pred_cond`, then ground through
    :func:`~repro.query.conditions.groundings`, so the model and the
    runtime share one resolution semantics.
    """
    attrs = list(pools)
    total = 1
    for pool in pools.values():
        if not pool:
            return None
        total *= len(pool)
        if total > limit:
            return None
    variables = {a: null() for a in attrs}
    positions = {a: i for i, a in enumerate(attrs)}
    values = tuple(variables[a] for a in attrs)
    cond = _pred_cond(pred, positions, values)
    domains = {id(variables[a]): tuple(pools[a]) for a in attrs}
    saw_true = saw_false = False
    for binding in groundings(
        [variables[a] for a in attrs], domains, limit=limit
    ):
        if evaluate_ground(cond, binding):
            saw_true = True
        else:
            saw_false = True
        if saw_true and saw_false:
            break
    return saw_true, saw_false


def _select_verdict(
    pred: Pred, child: Facts, ctx: _Ctx
) -> Optional[str]:
    """``"tautology"`` / ``"contradiction"`` / None, under the gate."""
    refs = tuple(referenced_attributes(pred))
    definite = all(a not in child.nullable for a in refs)
    gate = definite or (ctx.mode == MODE_LEAST and ctx.least_safe)
    if not gate:
        return None
    # domain-independent contradiction: mentioned constants plus one
    # *shared* fresh sentinel per referenced attribute is a complete
    # small model for equality logic — k sentinels visible to every
    # attribute realize each equality pattern among k variables
    # (per-attribute private sentinels would brand `A = B` unsatisfiable)
    constants = _mentioned_constants(pred)
    sentinels = tuple(_Sentinel() for _ in refs)
    logical_pools = {a: constants + sentinels for a in refs}
    profile = _pred_profile(pred, logical_pools)
    if profile is not None and not profile[0]:
        return "contradiction"
    # domain-level verdicts need a verified value superset per attribute
    verified: Dict[str, Sequence[Any]] = {}
    for attribute in refs:
        pool = child.pools.get(attribute)
        if not pool or _is_open_pool(pool):
            return None
        verified[attribute] = pool
    profile = _pred_profile(pred, verified)
    if profile is None:
        return None
    saw_true, saw_false = profile
    if not saw_true:
        return "contradiction"
    if not saw_false:
        return "tautology"
    return None


# ---------------------------------------------------------------------------
# the annotated plan tree
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class PlanInfo:
    """One node of the analyzed tree: the node, its facts, its keys."""

    node: Node
    facts: Facts
    children: Tuple["PlanInfo", ...]
    label: str
    keys: Tuple[Tuple[str, ...], ...] = ()


def pred_text(pred: Pred) -> str:
    """Pipeline-syntax rendering of a predicate (for labels and ops)."""
    if isinstance(pred, Eq):
        return f"{pred.attribute} = {pred.constant!r}"
    if isinstance(pred, In):
        inner = ", ".join(repr(c) for c in pred.constants)
        return f"{pred.attribute} in ({inner})"
    if isinstance(pred, AttrEq):
        return f"{pred.first} = {pred.second}"
    if isinstance(pred, NotP):
        return f"not ({pred_text(pred.operand)})"
    if isinstance(pred, AndP):
        return " and ".join(
            f"({pred_text(p)})" for p in pred.operands
        )
    if isinstance(pred, OrP):
        return " or ".join(f"({pred_text(p)})" for p in pred.operands)
    return repr(pred)


def _node_label(node: Node, children: Sequence[Facts]) -> str:
    if isinstance(node, Scan):
        return f"Scan {node.name}"
    if isinstance(node, Empty):
        return f"Empty [{' '.join(node.attributes)}]"
    if isinstance(node, Select):
        return f"Select {pred_text(node.pred)}"
    if isinstance(node, Project):
        return f"Project [{' '.join(node.attributes)}]"
    if isinstance(node, Rename):
        pairs = ", ".join(f"{old}->{new}" for old, new in node.mapping)
        return f"Rename {pairs}"
    if isinstance(node, Join):
        left, right = children
        shared = [a for a in left.attrs if a in right.attrs]
        if shared:
            return f"Join strategy=bucket({' '.join(shared)})"
        return "Join strategy=nested-loop(cross)"
    if isinstance(node, Union):
        return "Union"
    if isinstance(node, Difference):
        return "Difference"
    return type(node).__name__


def _candidate_keys(facts: Facts) -> Tuple[Tuple[str, ...], ...]:
    if not facts.fds or len(facts.attrs) > 10 or len(facts.fds) > 16:
        return ()
    try:
        from ..armstrong.keys import candidate_keys

        return tuple(candidate_keys(facts.attrs, facts.fds, limit=32))
    except Exception:  # pragma: no cover - key inference is best-effort
        return ()


def analyze(
    node: Node,
    catalog: Mapping[str, RelationSchema],
    stats: Optional[Mapping[str, RelationStats]] = None,
    fds: Optional[Mapping[str, Any]] = None,
    mode: str = MODE_LEAST,
    limit: int = DEFAULT_LIMIT,
    least_safe: bool = True,
) -> PlanInfo:
    """Annotate a (validated) tree with inferred facts, bottom-up."""
    output_schema(node, catalog)
    ctx = _Ctx(catalog, stats or {}, fds or {}, mode, limit, least_safe)
    return _analyze(node, ctx)


def _analyze(node: Node, ctx: _Ctx) -> PlanInfo:
    children = tuple(_analyze(child, ctx) for child in _children(node))
    child_facts = [info.facts for info in children]
    facts = _facts_of(node, child_facts, ctx)
    return PlanInfo(
        node=node,
        facts=facts,
        children=children,
        label=_node_label(node, child_facts),
        keys=_candidate_keys(facts),
    )


# ---------------------------------------------------------------------------
# rewrites
# ---------------------------------------------------------------------------


def _conjuncts(pred: Pred) -> List[Pred]:
    if isinstance(pred, AndP):
        out: List[Pred] = []
        for operand in pred.operands:
            out.extend(_conjuncts(operand))
        return out
    return [pred]


def _conj(preds: Sequence[Pred]) -> Pred:
    if len(preds) == 1:
        return preds[0]
    return AndP(tuple(preds))


def _simplify_selects(node: Node, ctx: _Ctx, fired: List[str]) -> Node:
    if isinstance(node, Select):
        source = _simplify_selects(node.source, ctx, fired)
        child = ctx.facts(source)
        verdict = _select_verdict(node.pred, child, ctx)
        if verdict == "tautology":
            fired.append("tautology-elimination")
            return source
        if verdict == "contradiction":
            fired.append("contradiction-elimination")
            return Empty(child.attrs)
        return Select(source, node.pred)
    return _rebuild(node, ctx, fired, _simplify_selects)


def _cascade_empty(node: Node, ctx: _Ctx, fired: List[str]) -> Node:
    rebuilt = _rebuild(node, ctx, fired, _cascade_empty)
    if isinstance(rebuilt, (Select, Project, Rename)) and isinstance(
        rebuilt.source, Empty
    ):
        fired.append("empty-cascade")
        return Empty(ctx.facts(rebuilt).attrs)
    if isinstance(rebuilt, Join) and (
        isinstance(rebuilt.left, Empty) or isinstance(rebuilt.right, Empty)
    ):
        fired.append("empty-cascade")
        return Empty(ctx.facts(rebuilt).attrs)
    if isinstance(rebuilt, Union):
        if isinstance(rebuilt.left, Empty):
            fired.append("dead-branch-elimination")
            return rebuilt.right
        if isinstance(rebuilt.right, Empty):
            fired.append("dead-branch-elimination")
            return rebuilt.left
    if isinstance(rebuilt, Difference):
        if isinstance(rebuilt.left, Empty):
            fired.append("empty-cascade")
            return Empty(ctx.facts(rebuilt).attrs)
        if isinstance(rebuilt.right, Empty):
            fired.append("difference-identity")
            return rebuilt.left
    return rebuilt


def _push_selects(node: Node, ctx: _Ctx, fired: List[str]) -> Node:
    if isinstance(node, Select):
        source = _push_selects(node.source, ctx, fired)
        if isinstance(source, Join):
            left_facts = ctx.facts(source.left)
            right_facts = ctx.facts(source.right)
            shared = set(left_facts.attrs) & set(right_facts.attrs)
            left_only = set(left_facts.attrs) - shared
            right_only = set(right_facts.attrs) - shared
            to_left: List[Pred] = []
            to_right: List[Pred] = []
            keep: List[Pred] = []
            for conjunct in _conjuncts(node.pred):
                refs = set(referenced_attributes(conjunct))
                if refs and refs <= left_only:
                    to_left.append(conjunct)
                elif refs and refs <= right_only:
                    to_right.append(conjunct)
                else:
                    keep.append(conjunct)
            if to_left or to_right:
                fired.append("select-pushdown(join)")
                new_left: Node = source.left
                new_right: Node = source.right
                if to_left:
                    new_left = _push_selects(
                        Select(source.left, _conj(to_left)), ctx, fired
                    )
                if to_right:
                    new_right = _push_selects(
                        Select(source.right, _conj(to_right)), ctx, fired
                    )
                joined: Node = Join(new_left, new_right)
                if keep:
                    joined = Select(joined, _conj(keep))
                return joined
        if isinstance(source, Union):
            fired.append("select-pushdown(union)")
            return Union(
                _push_selects(Select(source.left, node.pred), ctx, fired),
                _push_selects(Select(source.right, node.pred), ctx, fired),
            )
        if isinstance(source, Difference):
            fired.append("select-pushdown(difference)")
            return Difference(
                _push_selects(Select(source.left, node.pred), ctx, fired),
                source.right,
            )
        if isinstance(source, Project):
            fired.append("select-pushdown(project)")
            return Project(
                _push_selects(
                    Select(source.source, node.pred), ctx, fired
                ),
                source.attributes,
            )
        return Select(source, node.pred)
    return _rebuild(node, ctx, fired, _push_selects)


def _push_projections(node: Node, ctx: _Ctx, fired: List[str]) -> Node:
    if isinstance(node, Project):
        source = node.source
        if isinstance(source, Project):
            fired.append("project-collapse")
            return _push_projections(
                Project(source.source, node.attributes), ctx, fired
            )
        if isinstance(source, Union):
            fired.append("project-pushdown(union)")
            return Union(
                _push_projections(
                    Project(source.left, node.attributes), ctx, fired
                ),
                _push_projections(
                    Project(source.right, node.attributes), ctx, fired
                ),
            )
        if isinstance(source, Join):
            left_facts = ctx.facts(source.left)
            right_facts = ctx.facts(source.right)
            shared = set(left_facts.attrs) & set(right_facts.attrs)
            wanted = set(node.attributes) | shared
            needed_left = tuple(
                a for a in left_facts.attrs if a in wanted
            )
            needed_right = tuple(
                a for a in right_facts.attrs if a in wanted
            )
            narrower_left = (
                needed_left
                and needed_left != left_facts.attrs
            )
            narrower_right = (
                needed_right
                and needed_right != right_facts.attrs
            )
            if narrower_left or narrower_right:
                fired.append("project-pushdown(join)")
                new_left: Node = source.left
                new_right: Node = source.right
                if narrower_left:
                    new_left = _push_projections(
                        Project(source.left, needed_left), ctx, fired
                    )
                if narrower_right:
                    new_right = _push_projections(
                        Project(source.right, needed_right), ctx, fired
                    )
                return Project(Join(new_left, new_right), node.attributes)
        return Project(
            _push_projections(source, ctx, fired), node.attributes
        )
    return _rebuild(node, ctx, fired, _push_projections)


def _fuse_cross(node: Node, ctx: _Ctx, fired: List[str]) -> Node:
    rebuilt = _rebuild(node, ctx, fired, _fuse_cross)
    if not isinstance(rebuilt, Join):
        return rebuilt
    factors = _flatten_cross(rebuilt, ctx)
    if factors is None or len(factors) < 3:
        return rebuilt
    sizes = [ctx.facts(f).est_rows for f in factors]
    if any(size is None for size in sizes):
        return rebuilt
    order = sorted(range(len(factors)), key=lambda i: (sizes[i], i))
    if order == list(range(len(factors))):
        return rebuilt
    fired.append("cross-fusion")
    original_attrs = ctx.facts(rebuilt).attrs
    fused: Node = factors[order[0]]
    for index in order[1:]:
        fused = Join(fused, factors[index])
    return Project(fused, original_attrs)


def _flatten_cross(node: Node, ctx: _Ctx) -> Optional[List[Node]]:
    """The factors of a pure cross chain (every join spine node is
    attribute-disjoint), or None."""
    if not isinstance(node, Join):
        return [node]
    left_attrs = set(ctx.facts(node.left).attrs)
    right_attrs = set(ctx.facts(node.right).attrs)
    if left_attrs & right_attrs:
        return None
    left = _flatten_cross(node.left, ctx)
    right = _flatten_cross(node.right, ctx)
    if left is None or right is None:
        return None
    return left + right


def _rebuild(
    node: Node, ctx: _Ctx, fired: List[str], rewrite: Any
) -> Node:
    """Apply ``rewrite`` to every child, preserving the node shape."""
    if isinstance(node, (Scan, Empty)):
        return node
    if isinstance(node, Select):
        return Select(rewrite(node.source, ctx, fired), node.pred)
    if isinstance(node, Project):
        return Project(rewrite(node.source, ctx, fired), node.attributes)
    if isinstance(node, Rename):
        return Rename(rewrite(node.source, ctx, fired), node.mapping)
    if isinstance(node, Join):
        return Join(
            rewrite(node.left, ctx, fired), rewrite(node.right, ctx, fired)
        )
    if isinstance(node, Union):
        return Union(
            rewrite(node.left, ctx, fired), rewrite(node.right, ctx, fired)
        )
    if isinstance(node, Difference):
        return Difference(
            rewrite(node.left, ctx, fired), rewrite(node.right, ctx, fired)
        )
    raise QueryError(f"not a query node: {node!r}")


# ---------------------------------------------------------------------------
# the driver
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Plan:
    """An optimized query plan: the rewritten tree plus its pedigree."""

    source: Node
    node: Node
    rewrites: Tuple[str, ...]
    info: PlanInfo


def optimize_tree(
    node: Node,
    catalog: Mapping[str, RelationSchema],
    stats: Optional[Mapping[str, RelationStats]] = None,
    fds: Optional[Mapping[str, Any]] = None,
    mode: str = MODE_LEAST,
    limit: int = DEFAULT_LIMIT,
    least_safe: bool = True,
) -> Plan:
    """Rewrite a validated tree to an equivalent, cheaper plan.

    Rewrites are applied to a fixpoint (bounded passes); the result is
    pinned field-identical to evaluating the tree as written, in both
    modes, by ``tests/query/test_optimize.py``.
    """
    output_schema(node, catalog)
    ctx = _Ctx(catalog, stats or {}, fds or {}, mode, limit, least_safe)
    fired: List[str] = []
    current = node
    for _ in range(5):
        previous = current
        current = _simplify_selects(current, ctx, fired)
        current = _cascade_empty(current, ctx, fired)
        current = _push_selects(current, ctx, fired)
        current = _push_projections(current, ctx, fired)
        current = _fuse_cross(current, ctx, fired)
        if current == previous:
            break
    info = _analyze(current, ctx)
    return Plan(
        source=node, node=current, rewrites=tuple(fired), info=info
    )


# ---------------------------------------------------------------------------
# EXPLAIN rendering
# ---------------------------------------------------------------------------


def render_plan(plan: Plan) -> str:
    """The EXPLAIN text: tree, inferred keys, strategies, rewrites."""
    lines: List[str] = []

    def walk(info: PlanInfo, depth: int) -> None:
        facts = info.facts
        parts = [info.label]
        if facts.est_rows is not None:
            parts.append(f"rows<={facts.est_rows}")
        if facts.nullable:
            parts.append(
                "nullable=" + ",".join(sorted(facts.nullable))
            )
        if info.keys:
            rendered = " ".join(
                "(" + " ".join(key) + ")" for key in info.keys
            )
            parts.append(f"keys={rendered}")
        if facts.empty:
            parts.append("EMPTY")
        if facts.ground_space > 1:
            parts.append(f"ground<={facts.ground_space}")
        lines.append("  " * depth + " ".join(parts))
        for child in info.children:
            walk(child, depth + 1)

    walk(plan.info, 0)
    if plan.rewrites:
        lines.append("rewrites: " + ", ".join(plan.rewrites))
    else:
        lines.append("rewrites: (none)")
    return "\n".join(lines)
