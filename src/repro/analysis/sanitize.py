"""Opt-in structural invariant sanitizer for the chase engines.

The engine layers several mirrored structures on one partition — the
occurrence index over union-find classes, per-FD signature buckets with
anchor and member tables, the session's slot indirection over tombstoned
engine rows, the null registry over raw rows, the WAL's seq counter over
the journal file.  Each mirror exists so a hot path can skip a rescan;
each is therefore a place where a missed journal entry or a wrong undo
order corrupts state *silently* — the chase still runs, it just stops
computing the Theorem-4 fixpoint.

This module recomputes every mirror from its ground truth and raises
:class:`~repro.errors.SanitizerError` on the first disagreement, naming
the structure, the keys involved, and both sides.  It is opt-in
(``REPRO_SANITIZE=1`` in the environment, or ``sanitize=True`` on a
:class:`~repro.chase.session.ChaseSession`) because the audits are
O(instance) per mutation — they turn the randomized property suites into
an engine-invariant fuzzer (the dedicated CI job), not something to pay
on a production hot path.

Audit scope, per entry point:

* :func:`audit_core` — union-find forest integrity (parent pointers in
  range, no cycles, ``size`` totals equal to recomputed class
  populations), tag table keyed by exactly the live roots, occurrence
  index equal to a recomputation from the encoded cells, class weights
  no smaller than their occurrence counts, and — at worklist quiescence
  only — signature coverage of every live ``(fd, row)`` pair, recomputed
  signatures, the ``_members`` ⇄ ``_sigs`` mirror, and anchor discipline
  (every non-empty bucket anchored by one of its members).
* :func:`audit_session` — everything above, plus the slot-indirection
  bijection (injective, live slots exactly, arity preserved), mark and
  ratchet bounds, trail identity with the union-find, the null-registry
  ⇄ raw-row agreement in both directions, and constant raw cells tagged
  with their own value (or poisoned) in the partition.
* :func:`audit_relation` — everything above on the managed session,
  plus seq/checkpoint ordering and, in direct-append journaling mode,
  WAL seq contiguity against the on-disk log.

Exact class *weights* are deliberately not asserted: a class's weight is
its cell-occurrence total plus the weights of occurrence-free nodes that
merged in (the pre-materialized *nothing* node, retired rows' dangling
nulls), and that history is not reconstructible from current state.  The
audit pins the sound half — a class can never weigh less than the cells
it currently owns.
"""

from __future__ import annotations

import os
from typing import Any, Dict, List, Set, Tuple

from ..core.values import is_null
from ..errors import SanitizerError

#: the environment flag that arms the sanitizer process-wide
ENV_FLAG = "REPRO_SANITIZE"


def enabled() -> bool:
    """Is the sanitizer armed via ``REPRO_SANITIZE``?  (``0``/empty = off.)"""
    return os.environ.get(ENV_FLAG, "") not in ("", "0")


def _fail(structure: str, message: str) -> None:
    raise SanitizerError(f"{structure}: {message}")


def _sample(items: Any, limit: int = 6) -> str:
    """A bounded, deterministic rendering of an offending key set."""
    listed = sorted(items, key=repr)
    shown = ", ".join(repr(item) for item in listed[:limit])
    if len(listed) > limit:
        shown += f", ... ({len(listed)} total)"
    return shown


# ---------------------------------------------------------------------------
# union-find + core mirrors
# ---------------------------------------------------------------------------


def _roots_of(uf: Any) -> List[int]:
    """Recomputed root per node, via audited (bounded, memoized) walks."""
    parent = uf.parent
    count = len(parent)
    root_of: List[int] = [-1] * count
    for node in range(count):
        if root_of[node] >= 0:
            continue
        path = []
        cur = node
        steps = 0
        while parent[cur] != cur and root_of[cur] < 0:
            if not 0 <= parent[cur] < count:
                _fail(
                    "unionfind",
                    f"parent[{cur}] == {parent[cur]} is outside 0..{count - 1}",
                )
            path.append(cur)
            cur = parent[cur]
            steps += 1
            if steps > count:
                _fail("unionfind", f"parent cycle reached from node {node}")
        root = root_of[cur] if root_of[cur] >= 0 else cur
        root_of[cur] = root
        for waypoint in path:
            root_of[waypoint] = root
    return root_of


def audit_core(core: Any) -> None:
    """Audit a chase core's partition and index mirrors.

    Duck-typed: works on any :class:`~repro.chase.engine.ChaseState`
    (tags + cells), with the occurrence/signature audits applying when
    the core carries the :class:`~repro.chase.core.SignatureChaseCore`
    machinery.  Signature-bucket audits run only at worklist quiescence
    (``_work`` empty) — mid-drain the buckets are legitimately stale.
    """
    uf = core.uf
    root_of = _roots_of(uf)

    # size totals: size[root] is maintained by summation on union and
    # subtraction on undo; reverse-order undo violations corrupt it
    population: Dict[int, int] = {}
    for node, root in enumerate(root_of):
        population[root] = population.get(root, 0) + 1
    for root, count in population.items():
        if uf.size[root] != count:
            _fail(
                "unionfind",
                f"size[{root}] == {uf.size[root]} but the class holds "
                f"{count} nodes",
            )

    roots: Set[int] = set(population)

    # tag table: exactly one tag per live root (merges pop both sides'
    # tags and re-tag the survivor; undo restores both)
    tags = getattr(core, "tags", None)
    if tags is not None:
        tagged = set(tags)
        if tagged != roots:
            untagged = roots - tagged
            stale = tagged - roots
            if untagged:
                _fail("tags", f"roots with no tag: {_sample(untagged)}")
            _fail("tags", f"tags keyed by non-roots: {_sample(stale)}")

    cells = getattr(core, "cells", None)
    occ = getattr(core, "_occ", None)
    if cells is None or occ is None:
        return

    # occurrence index: recompute class -> cells from the encoded rows
    # (tombstoned slots have no cells, so they drop out naturally)
    expected_occ: Dict[int, Set[Tuple[int, int]]] = {}
    for row, encoded in enumerate(cells):
        for col, node in enumerate(encoded):
            expected_occ.setdefault(root_of[node], set()).add((row, col))
    if set(occ) != set(expected_occ):
        missing = set(expected_occ) - set(occ)
        stale = set(occ) - set(expected_occ)
        if missing:
            _fail(
                "occurrence-index",
                f"classes with cells but no entry: {_sample(missing)}",
            )
        _fail(
            "occurrence-index",
            f"entries for classes with no cells (or non-roots): "
            f"{_sample(stale)}",
        )
    for root, listed in occ.items():
        have = set(listed)
        if len(have) != len(listed):
            _fail(
                "occurrence-index",
                f"class {root} lists a cell twice: {_sample(listed)}",
            )
        if have != expected_occ[root]:
            _fail(
                "occurrence-index",
                f"class {root} lists {_sample(have - expected_occ[root] or expected_occ[root] - have)} "
                f"on one side only",
            )

    # occurrence-weighted union: a class can gain weight from
    # occurrence-free members (see module doc) but never owns more cells
    # than its weight
    for root in roots:
        owned = len(occ.get(root, ()))
        if uf.weight[root] < owned:
            _fail(
                "unionfind",
                f"weight[{root}] == {uf.weight[root]} but the class owns "
                f"{owned} cell occurrences",
            )

    sigs = getattr(core, "_sigs", None)
    work = getattr(core, "_work", None)
    if sigs is None or (work is not None and work):
        return  # no bucket machinery, or legitimately mid-drain

    # signature coverage: every (fd, live row) pair signed, nothing else
    fd_count = len(core.fds)
    live = [row for row, encoded in enumerate(cells) if encoded]
    expected_keys = {(k, row) for k in range(fd_count) for row in live}
    if set(sigs) != expected_keys:
        missing = expected_keys - set(sigs)
        stale = set(sigs) - expected_keys
        if missing:
            _fail(
                "signatures",
                f"live (fd, row) pairs never signed: {_sample(missing)}",
            )
        _fail(
            "signatures",
            f"signatures for dead or out-of-range rows: {_sample(stale)}",
        )

    # recompute each signature from the current partition
    lhs_cols = core._lhs_cols
    for (k, row), sig in sigs.items():
        cols = lhs_cols[k]
        if len(cols) == 1:
            want: Any = root_of[cells[row][cols[0]]]
        else:
            want = tuple(root_of[cells[row][col]] for col in cols)
        if sig != want:
            _fail(
                "signatures",
                f"(fd {k}, row {row}) recorded as {sig!r} but the "
                f"partition says {want!r}",
            )

    # members mirror: _members[(k, s)] == {row : _sigs[(k, row)] == s}
    members = core._members
    expected_members: Dict[Tuple[int, Any], Set[int]] = {}
    for (k, row), sig in sigs.items():
        expected_members.setdefault((k, sig), set()).add(row)
    if set(members) != set(expected_members):
        missing = set(expected_members) - set(members)
        stale = set(members) - set(expected_members)
        if missing:
            _fail("buckets", f"signed rows with no bucket: {_sample(missing)}")
        _fail("buckets", f"empty-signature buckets survive: {_sample(stale)}")
    for key, bucket in members.items():
        have = set(bucket)
        want_rows = expected_members[key]
        if have != want_rows:
            _fail(
                "buckets",
                f"bucket {key!r} holds {_sample(have)} but the signatures "
                f"say {_sample(want_rows)}",
            )

    # anchor discipline: every bucket anchored, by one of its own members
    anchors = core._anchors
    for key, bucket in members.items():
        anchor = anchors.get(key)
        if anchor is None:
            _fail("anchors", f"bucket {key!r} has members but no anchor")
        if anchor not in bucket:
            _fail(
                "anchors",
                f"bucket {key!r} anchored by row {anchor} which is not a "
                f"member",
            )
    stale_anchors = set(anchors) - set(members)
    if stale_anchors:
        _fail(
            "anchors",
            f"anchors for empty buckets: {_sample(stale_anchors)}",
        )


# ---------------------------------------------------------------------------
# session mirrors
# ---------------------------------------------------------------------------


def audit_session(session: Any) -> None:
    """Audit a :class:`~repro.chase.session.ChaseSession` (core included)."""
    audit_core(session)

    cells = session.cells
    slots = session._slots
    raw_rows = session._raw_rows
    marks = session._marks
    arity = len(session.schema)

    if not (len(slots) == len(raw_rows) == len(marks)):
        _fail(
            "slots",
            f"{len(slots)} slots, {len(raw_rows)} raw rows, "
            f"{len(marks)} marks — the three must move together",
        )
    if len(set(slots)) != len(slots):
        dupes = {s for s in slots if slots.count(s) > 1}
        _fail("slots", f"slot table is not injective: {_sample(dupes)}")
    live = {i for i, encoded in enumerate(cells) if encoded}
    for index, slot in enumerate(slots):
        if not 0 <= slot < len(cells):
            _fail(
                "slots",
                f"row {index} maps to slot {slot}, outside "
                f"0..{len(cells) - 1}",
            )
        if slot not in live:
            _fail("slots", f"row {index} maps to tombstoned slot {slot}")
        if len(cells[slot]) != arity:
            _fail(
                "slots",
                f"slot {slot} holds {len(cells[slot])} cells for a "
                f"{arity}-attribute scheme",
            )
    leaked = live - set(slots)
    if leaked:
        _fail(
            "slots",
            f"live engine slots reachable from no row: {_sample(leaked)}",
        )

    # trail discipline
    if session.uf.trail is not session._trail:
        _fail("trail", "union-find journals onto a different trail")
    trail_len = len(session._trail)
    if not 0 <= session._ratchet_mark <= trail_len:
        _fail(
            "trail",
            f"ratchet mark {session._ratchet_mark} outside the trail "
            f"(length {trail_len})",
        )
    apps_len = len(session.applications)
    for index, (mark, apps) in enumerate(marks):
        if not 0 <= mark <= trail_len or not 0 <= apps <= apps_len:
            _fail(
                "trail",
                f"row {index} marked at (trail {mark}, apps {apps}) but "
                f"the journals hold ({trail_len}, {apps_len})",
            )

    # null registry <-> raw rows, both directions
    null_nodes = session._null_nodes
    null_objects = session._null_objects
    if set(null_nodes) != set(null_objects):
        _fail(
            "null-registry",
            "node and object registries disagree on which nulls exist: "
            f"{_sample(set(null_nodes) ^ set(null_objects))}",
        )
    occurring = {
        id(value)
        for row in raw_rows
        for value in row.values
        if is_null(value)
    }
    unregistered = occurring - set(null_nodes)
    if unregistered:
        _fail(
            "null-registry",
            f"raw-row nulls missing from the registry: "
            f"{_sample(session._null_objects.get(k, k) for k in unregistered)}",
        )
    dangling = set(null_nodes) - occurring
    if dangling:
        _fail(
            "null-registry",
            f"registered nulls occurring in no raw row: "
            f"{_sample(null_objects[k] for k in dangling)}",
        )

    # cross-layer: a constant raw cell's engine class must be tagged with
    # that constant (or be the poisoned class) — nulls are skipped because
    # the surviving tag inside an NEC class is representation-dependent
    find = session.uf.find
    tags = session.tags
    for index, row in enumerate(raw_rows):
        encoded = cells[slots[index]]
        for col, value in enumerate(row.values):
            if is_null(value):
                continue
            kind, payload = tags[find(encoded[col])]
            if kind == "nothing":
                continue
            if kind != "const" or payload != value:
                _fail(
                    "cells",
                    f"row {index} col {col} stores constant {value!r} but "
                    f"its class is tagged ({kind!r}, {payload!r})",
                )


# ---------------------------------------------------------------------------
# durable-relation mirrors
# ---------------------------------------------------------------------------


def audit_relation(managed: Any) -> None:
    """Audit a :class:`~repro.db.database.ManagedRelation` (session included)."""
    audit_session(managed.session)

    if not 0 <= managed.checkpoint_seq <= managed.seq:
        _fail(
            "wal",
            f"checkpoint_seq {managed.checkpoint_seq} / seq {managed.seq} "
            f"out of order",
        )

    wal = managed.wal
    # WAL file audits only apply in direct-append mode with the buffer
    # flushed per record; a group committer legitimately holds staged
    # records the file has not seen yet
    if managed.journal_sink != wal.append or wal.sync == "none":
        return
    from ..db.log import scan

    try:
        payloads, _, torn = scan(wal.path)
    except Exception as exc:  # DatabaseError: garbage before intact records
        _fail("wal", f"log no longer scans cleanly: {exc}")
        return  # pragma: no cover - _fail always raises
    if torn:
        _fail("wal", "torn final record in a log owned by a live process")
    seqs = [payload.get("seq") for payload in payloads]
    for position, seq in enumerate(seqs):
        if not isinstance(seq, int):
            _fail("wal", f"record {position} carries seq {seq!r}")
        if position and seq != seqs[position - 1] + 1:
            _fail(
                "wal",
                f"seq jumps {seqs[position - 1]} -> {seq} at record "
                f"{position}",
            )
    if seqs:
        if seqs[-1] != managed.seq:
            _fail(
                "wal",
                f"log ends at seq {seqs[-1]} but the relation counted "
                f"{managed.seq}",
            )
    elif managed.seq != managed.checkpoint_seq:
        _fail(
            "wal",
            f"empty log but {managed.seq - managed.checkpoint_seq} ops "
            f"journalled past the checkpoint",
        )


# ---------------------------------------------------------------------------
# query evaluator answers
# ---------------------------------------------------------------------------


def audit_evaluator(
    evaluator: Any,
    attrs: Tuple[str, ...],
    crows: Any,
    certain_rows: Any,
    maybe_rows: Any,
) -> None:
    """Audit one finished :meth:`~repro.query.evaluate.Evaluator.run`.

    The evaluator's output discipline, recomputed from ground truth:

    * the conditional table is deduplicated — every surviving row key
      (nulls by identity, constants by value) appears exactly once;
    * **certain** and **maybe** answers partition the surviving rows —
      no key is tagged both ways, and every answer row is one of the
      conditional rows;
    * every null any row condition references was registered at
      construction, with an enumeration domain — a condition over an
      unregistered null could never be ground, so its truth was
      made up.
    """
    from ..query.conditions import nulls_of
    from ..query.evaluate import _row_key

    seen: Set[Tuple[Any, ...]] = set()
    for crow in crows:
        if len(crow.values) != len(attrs):
            _fail(
                "evaluator",
                f"conditional row arity {len(crow.values)} does not "
                f"match the output scheme {attrs}",
            )
        key = _row_key(crow.values)
        if key in seen:
            _fail(
                "evaluator",
                f"conditional table holds a duplicate row key: "
                f"{_sample([key])}",
            )
        seen.add(key)
        for null_obj in nulls_of(crow.cond):
            if id(null_obj) not in evaluator._nulls:
                _fail(
                    "evaluator",
                    f"condition references unregistered null "
                    f"{null_obj!r}",
                )
            if id(null_obj) not in evaluator.domains:
                _fail(
                    "evaluator",
                    f"registered null {null_obj!r} has no enumeration "
                    f"domain",
                )
    certain_keys = {_row_key(row) for row in certain_rows}
    maybe_keys = {_row_key(row) for row in maybe_rows}
    overlap = certain_keys & maybe_keys
    if overlap:
        _fail(
            "evaluator",
            f"rows tagged both certain and maybe: {_sample(overlap)}",
        )
    stray = (certain_keys | maybe_keys) - seen
    if stray:
        _fail(
            "evaluator",
            f"answer rows missing from the conditional table: "
            f"{_sample(stray)}",
        )
