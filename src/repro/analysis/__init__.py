"""Static analysis over scripts, batches, and engine state.

Three coordinated passes, none of which executes user ops:

* :mod:`repro.analysis.check` — the ``repro lint`` checker: a whole
  session/db script or server batch analyzed against a schema + FD set,
  every finding a structured :class:`Diagnostic` (line, code, message,
  suggested fix) instead of a first-failure traceback mid-execution;
* :mod:`repro.analysis.diagnostics` — the diagnostic schema itself,
  shared verbatim by the CLI, runtime :class:`~repro.errors.ScriptError`
  reporting, and the server's batch fast-reject payload;
* :mod:`repro.analysis.plan` — the query-plan linter: coded findings
  (``W_CROSS_PRODUCT`` / ``W_GROUND_BLOWUP`` / ``E_EMPTY_CERTAIN`` /
  ``W_DEAD_BRANCH``) over the facts the static planner
  (:mod:`repro.query.optimize`) infers, wired into ``repro lint
  --query``, the REPL, and the server ``query`` verb;
* :mod:`repro.analysis.sanitize` — the opt-in (``REPRO_SANITIZE=1``)
  engine-invariant sanitizer: recomputes the occurrence/signature/slot/
  WAL mirrors from ground truth after mutations (and audits evaluator
  answer invariants after each query run) and raises precise
  :class:`~repro.errors.SanitizerError` findings.
"""

from .check import (
    BATCH_VERBS,
    BatchLinter,
    SCRIPT_OPS,
    ScriptLinter,
    has_errors,
    lint_query_request,
    lint_query_script,
    lint_requests,
    lint_script,
)
from .diagnostics import CODES, Diagnostic, classify_cause, render_report
from .plan import lint_query_plan
from .sanitize import (
    audit_core,
    audit_evaluator,
    audit_relation,
    audit_session,
)
from .sanitize import enabled as sanitize_enabled

__all__ = [
    "BATCH_VERBS",
    "BatchLinter",
    "CODES",
    "Diagnostic",
    "SCRIPT_OPS",
    "ScriptLinter",
    "audit_core",
    "audit_evaluator",
    "audit_relation",
    "audit_session",
    "classify_cause",
    "has_errors",
    "lint_query_plan",
    "lint_query_request",
    "lint_query_script",
    "lint_requests",
    "lint_script",
    "render_report",
    "sanitize_enabled",
]
