"""The query-plan linter: refuse-before-execute, extended to reads.

PR 8's :mod:`repro.analysis.check` decides mutation scripts before the
engine runs them; this pass does the same for query trees, reading the
facts :func:`repro.query.optimize.analyze` infers bottom-up:

* ``E_EMPTY_CERTAIN`` (error) — the subtree is statically
  unsatisfiable: under the analysis gate (definite attributes, or
  least mode) no completion produces a row, so executing the query is
  pointless at best and a client bug at worst;
* ``W_DEAD_BRANCH`` (warning) — a union arm is provably empty; the
  query still answers, the arm just contributes nothing;
* ``W_CROSS_PRODUCT`` (warning) — a join shares no attributes, so
  evaluation enumerates the full cartesian product;
* ``W_GROUND_BLOWUP`` (warning) — a condition's grounding space can
  exceed the enumeration budget.  The bound is a worst case over every
  null the subtree scans, and Kleene pre-simplification usually leaves
  conditions referencing far fewer — so even in least mode, where the
  hazard is a real :class:`~repro.errors.DomainError`, this flags
  rather than refuses; in Kleene mode conditions are never ground and
  the message describes what switching modes could cost.

Severity is a field, not a prefix (the ``E_FD_CONFLICT``-as-warning
precedent), so a surface *could* escalate; today only
``E_EMPTY_CERTAIN`` is refusal-grade.

Query-layer imports are function-local, as in :mod:`.check` — the query
package imports :mod:`repro.analysis.sanitize` at run time, and keeping
this module import-light breaks the cycle.
"""

from __future__ import annotations

from typing import Any, List, Mapping, Optional

from .diagnostics import Diagnostic

__all__ = ["lint_query_plan"]


def _plan_diag(
    code: str,
    line: int,
    op: str,
    message: str,
    hint: str = "",
    severity: str = "error",
) -> Diagnostic:
    return Diagnostic(
        code=code,
        line=line,
        op=op,
        message=message,
        hint=hint,
        severity=severity,
    )


def lint_query_plan(
    catalog: Mapping[str, Any],
    node: Any,
    stats: Optional[Mapping[str, Any]] = None,
    fds: Optional[Mapping[str, Any]] = None,
    mode: str = "least",
    limit: Optional[int] = None,
    line: int = 0,
    op: str = "",
) -> List[Diagnostic]:
    """Every plan-level finding for one (statically valid) query tree.

    ``catalog`` maps relation name → scheme; ``stats`` (optional) maps
    relation name → :class:`~repro.query.optimize.RelationStats` — the
    instance-derived facts that power null-flow and blow-up bounds.
    Without stats every column is assumed nullable and grounding spaces
    are unknown, so only domain-independent findings fire.
    """
    from ..query.evaluate import DEFAULT_LIMIT
    from ..query.optimize import PlanInfo, analyze
    from ..query.algebra import Join, Union

    budget = DEFAULT_LIMIT if limit is None else limit
    info = analyze(
        node, catalog, stats=stats, fds=fds, mode=mode, limit=budget
    )
    diagnostics: List[Diagnostic] = []

    def walk(current: PlanInfo, parent: Optional[PlanInfo]) -> None:
        facts = current.facts
        if facts.empty:
            if parent is not None and isinstance(parent.node, Union):
                diagnostics.append(
                    _plan_diag(
                        "W_DEAD_BRANCH",
                        line,
                        op,
                        f"union arm `{current.label}` is provably empty "
                        "and contributes no rows",
                        hint="drop the arm or fix its predicate",
                        severity="warning",
                    )
                )
            else:
                diagnostics.append(
                    _plan_diag(
                        "E_EMPTY_CERTAIN",
                        line,
                        op,
                        f"subtree `{current.label}` is statically "
                        "unsatisfiable; no completion produces a row",
                        hint="the predicate contradicts itself or the "
                        "verified column domains",
                    )
                )
            return  # findings inside a dead subtree are noise
        if isinstance(current.node, Join):
            left, right = current.children
            shared = [
                a for a in left.facts.attrs if a in right.facts.attrs
            ]
            if not shared:
                est = ""
                if facts.est_rows is not None:
                    est = f" (up to {facts.est_rows} rows)"
                diagnostics.append(
                    _plan_diag(
                        "W_CROSS_PRODUCT",
                        line,
                        op,
                        "join shares no attributes; evaluation "
                        f"enumerates the full cross product{est}",
                        hint="rename a column to join on, or select "
                        "before joining",
                        severity="warning",
                    )
                )
        if facts.ground_space > budget and all(
            child.facts.ground_space <= budget
            for child in current.children
        ):
            # the bound is a worst case over every null the subtree
            # scans — conditions usually reference far fewer after
            # Kleene simplification — so this stays warning-grade even
            # in least mode: flag the hazard, don't refuse the query
            consequence = (
                "least-mode evaluation may raise DomainError"
                if mode == "least"
                else "switching to least mode could exceed the budget"
            )
            diagnostics.append(
                _plan_diag(
                    "W_GROUND_BLOWUP",
                    line,
                    op,
                    f"`{current.label}` can ground up to "
                    f"{facts.ground_space} bindings per condition "
                    f"(budget {budget}); {consequence}",
                    hint="project nulls away before this operator, or "
                    "evaluate in kleene mode",
                    severity="warning",
                )
            )
        for child in current.children:
            walk(child, current)

    walk(info, None)
    return diagnostics
