"""The diagnostic schema shared by ``repro lint``, ``ScriptError`` and the
server's batch pre-pass.

A :class:`Diagnostic` pins one finding to one op: the op's 1-based line
number (script) or 0-based request index (batch), a stable machine code
from :data:`CODES`, the op text as written, a human message, and an
optional suggested fix.  Every surface that reports an op failure — the
static checker (:mod:`repro.analysis.check`), a runtime
:class:`~repro.errors.ScriptError`, the server's ``batch`` refusal
payload — speaks this schema, so a failure looks the same whether it was
caught before execution or during it.

:func:`classify_cause` is the bridge from the runtime side: it maps the
exceptions the engine actually raises (their types and message shapes are
part of the library's tested surface) onto the same codes the static
checker emits, which is what lets ``tests/analysis`` assert that lint
predicts exactly the failures execution would produce.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping

from ..errors import CodecError, ConventionError, DomainError

#: every diagnostic code with its one-line meaning.  Codes are stable
#: machine identifiers (tests and client tooling match on them); the
#: human text lives in each diagnostic's ``message``.
CODES: Dict[str, str] = {
    # -- script-shaped ops (repro session / repro db ingest / repro lint) --
    "E_UNKNOWN_OP": "op is not in the session vocabulary",
    "E_MISSING_ARG": "op is missing a required argument",
    "E_ARITY": "row has the wrong number of cells for the scheme",
    "E_UNKNOWN_ATTR": "attribute is not in the relation scheme",
    "E_BAD_INT": "argument must be an integer",
    "E_BAD_INDEX": "row index is out of range at this point in the script",
    "E_BAD_ASSIGN": "update assignment is not ATTR=value",
    "E_DOMAIN": "constant is outside the attribute's declared finite domain",
    "E_FILL_CONST": "fill targets a cell that provably holds a constant",
    "E_FILL_UNPROVEN": "fill targets a cell no longer statically known null",
    "E_ROLLBACK_UNDERFLOW": "rollback without a matching snapshot",
    "E_CHECKPOINT_SCOPE": "checkpoint is a durable-database op",
    "E_CHECKPOINT_HELD": "checkpoint while snapshots are outstanding",
    "E_CONVENTION": "unknown TEST-FDs convention",
    "E_FD_CONFLICT": "op is provably inadmissible under the FD set",
    # -- server batch requests ---------------------------------------------
    "E_BAD_REQUEST": "request is not a well-formed op object",
    "E_UNKNOWN_VERB": "verb is not a mutation verb",
    # -- query scripts and the query verb ----------------------------------
    "E_UNKNOWN_RELATION": "query scans a relation the catalog does not have",
    "E_BAD_CELL": "cell token is not decodable",
    "E_UNKNOWN_NULL": "canonical null id was never minted by this relation",
    # -- query plans (repro.analysis.plan) -----------------------------------
    "W_CROSS_PRODUCT": "join shares no attributes; it is a cross product",
    "W_GROUND_BLOWUP": "a condition's grounding space exceeds the limit",
    "E_EMPTY_CERTAIN": "subtree is statically unsatisfiable; no completion "
    "produces a row",
    "W_DEAD_BRANCH": "union arm is provably empty and contributes nothing",
    # -- runtime fallback ----------------------------------------------------
    "E_RUNTIME": "runtime failure with no static code",
}


@dataclass(frozen=True)
class Diagnostic:
    """One finding about one op.

    ``line`` is 1-based for scripts and a 0-based request index for server
    batches (the ``render`` prefix says which).  ``op`` is the op text as
    written (scripts) or the compact request summary (batches).
    """

    code: str
    line: int
    op: str
    message: str
    hint: str = ""
    severity: str = field(default="error")

    def __post_init__(self) -> None:
        if self.code not in CODES:
            raise ValueError(f"unknown diagnostic code {self.code!r}")

    def render(self, kind: str = "line") -> str:
        """The CLI presentation: ``line 3: 'op text': E_CODE: message``."""
        parts = [f"{kind} {self.line}: {self.op!r}: {self.code}: {self.message}"]
        if self.hint:
            parts.append(f"  hint: {self.hint}")
        return "\n".join(parts)

    def to_payload(self) -> dict:
        """The wire shape the server's batch refusal carries."""
        payload: dict = {
            "code": self.code,
            "line": self.line,
            "op": self.op,
            "message": self.message,
        }
        if self.hint:
            payload["hint"] = self.hint
        if self.severity != "error":
            payload["severity"] = self.severity
        return payload

    @classmethod
    def from_payload(cls, payload: Mapping[str, Any]) -> "Diagnostic":
        return cls(
            code=str(payload["code"]),
            line=int(payload["line"]),
            op=str(payload.get("op", "")),
            message=str(payload.get("message", "")),
            hint=str(payload.get("hint", "")),
            severity=str(payload.get("severity", "error")),
        )


def render_report(diagnostics: List[Diagnostic], kind: str = "line") -> str:
    """All findings, one per line, in op order (the lint CLI output)."""
    ordered = sorted(diagnostics, key=lambda d: d.line)
    return "\n".join(diagnostic.render(kind) for diagnostic in ordered)


#: substring -> code, applied in order to the stringified cause.  The
#: messages matched here are the library's own raise sites (each is pinned
#: by an existing test); a new raise site with a new shape falls through
#: to E_RUNTIME rather than misclassifying.
_MESSAGE_RULES = (
    ("rollback without a snapshot", "E_ROLLBACK_UNDERFLOW"),
    ("outstanding snapshot", "E_CHECKPOINT_HELD"),
    ("checkpoint is a durable-database op", "E_CHECKPOINT_SCOPE"),
    ("cell is not null", "E_FILL_CONST"),
    ("unknown session op", "E_UNKNOWN_OP"),
    ("unknown convention", "E_CONVENTION"),
    ("bad assignment", "E_BAD_ASSIGN"),
    ("unknown mutation verb", "E_UNKNOWN_VERB"),
    ("no row at index", "E_BAD_INDEX"),
    ("unknown attribute", "E_UNKNOWN_ATTR"),
    ("unknown attributes", "E_UNKNOWN_ATTR"),
    ("is not in scheme", "E_UNKNOWN_ATTR"),
    ("row arity", "E_ARITY"),
    ("missing values for attributes", "E_ARITY"),
    ("row scheme", "E_ARITY"),
)


def classify_cause(cause: Exception | str) -> str:
    """Map a runtime failure onto the diagnostic code the static checker
    would have emitted for the same op.

    Classification is by exception type first (the unambiguous families),
    then by the message shapes of the library's own raise sites, with
    ``E_RUNTIME`` as the honest fallback for anything unrecognized.
    """
    text = str(cause)
    if isinstance(cause, ConventionError):
        return "E_CONVENTION"
    if isinstance(cause, DomainError):
        return "E_DOMAIN"
    if isinstance(cause, CodecError):
        return "E_BAD_CELL"
    for fragment, code in _MESSAGE_RULES:
        if fragment in text:
            return code
    if isinstance(cause, ValueError):
        return "E_BAD_INT"
    return "E_RUNTIME"
