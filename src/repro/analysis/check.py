"""Static analysis of op scripts and server batches — lint before run.

The checker interprets a script (the ``repro session`` / ``repro db
ingest`` vocabulary — :func:`repro.cli.run_script`) or a server mutation
batch (:mod:`repro.server.protocol` request objects) over an *abstract*
instance instead of a live session, and reports every op that is wrong —
not just the first, the way execution would.  One abstract cell is one
of:

* ``("const", v)`` — provably holds the constant ``v``;
* ``("null", n)`` — provably holds null number ``n`` (numbering is the
  checker's own; distinct numbers are distinct unknowns);
* ``("top",)`` — statically unknown.  Only :meth:`~_LintState.adopt`
  produces tops: adoption commits whatever substitutions the chase
  *forced*, and which nulls those are is a property of the fixpoint, not
  the script text.

While no cell is ``top`` the abstract rows *are* the raw rows the real
run would hold — every script constant and every minted null is tracked
exactly — so structural checks (arity, attributes, indexes, snapshot
depth, fill targets) are exact, and admissibility is decided by the same
oracle the paper provides: the chase of the abstract instance.  An op
whose post-state chase derives NOTHING is *provably inadmissible* and is
flagged ``E_FD_CONFLICT`` (a warning: execution does not raise — the
state poisons, and a later ``rollback`` may be the script's whole
point).  A ``check`` op on a provably poisoned instance is an *error*:
TEST-FDs refuses NOTHING-bearing instances at runtime.  When an
``E_FD_CONFLICT`` fires, the message names an Armstrong witness when a
pairwise one exists — the FD whose left-hand side two rows provably
share and the right-hand attribute where their constants differ.

The guarantee ``tests/analysis/test_lint_property.py`` pins: a script
with **no error-severity diagnostics** executes without raising.
Warnings do not block execution; the lint CLI exits 0 on clean, 1 on
warnings only, 2 on errors.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from ..armstrong import attribute_closure
from ..core.fd import FD, FDInput, as_fd
from ..core.relation import Relation
from ..core.schema import RelationSchema
from ..core.values import Null, is_null
from ..errors import CodecError
from ..opschema import NULL_TOKENS, SCRIPT_OPS
from .diagnostics import Diagnostic

_CONVENTIONS = ("weak", "strong")

Cell = Tuple[Any, ...]
_TOP: Cell = ("top",)


class _LintState:
    """The abstract instance a script/batch is interpreted over."""

    def __init__(
        self,
        schema: RelationSchema,
        fds: Sequence[FD],
        rows: Optional[Iterable[Sequence[Any]]] = None,
        snapshot_depth: int = 0,
        durable: bool = False,
    ) -> None:
        self.schema = schema
        self.fds = list(fds)
        self.durable = durable
        self._next_null = 0
        self.rows: List[List[Cell]] = []
        #: snapshot stack: (rows copy, poisoned flag) per outstanding mark.
        #: Pre-existing snapshots (a served relation may hold some) have no
        #: recorded rows — rolling back to one loses precision to tops.
        self.snapshots: List[Optional[Tuple[List[List[Cell]], bool]]] = [
            None
        ] * snapshot_depth
        #: exact == no ``top`` cell anywhere; the chase oracle is sound
        #: only while this holds
        self.exact = True
        #: opaque == even the row *count* is unknown (a rollback restored
        #: a snapshot taken before this checker existed); index bounds and
        #: cell facts are unavailable from here on
        self.opaque = False
        self.poisoned = False
        if rows:
            for values in rows:
                self.rows.append([self.lift(value) for value in values])
            self._refresh_poisoned()

    # -- abstract cells ----------------------------------------------------

    def fresh_null(self) -> Cell:
        cell = ("null", self._next_null)
        self._next_null += 1
        return cell

    def lift(self, value: Any) -> Cell:
        """A concrete engine value as an abstract cell (initial rows)."""
        if is_null(value):
            return self.fresh_null()
        return ("const", value)

    def parse_cell(self, text: str) -> Cell:
        """One script cell, by the shared null-token rule."""
        text = text.strip()
        if text in NULL_TOKENS:
            return self.fresh_null()
        return ("const", text)

    # -- structural facts --------------------------------------------------

    def in_domain(self, attribute: str, value: Any) -> bool:
        try:
            return value in self.schema.domain(attribute)
        except Exception:  # non-hashable constant: not statically checkable
            return True

    def valid_index(self, index: int) -> bool:
        if self.opaque:
            return index >= 0  # count unknown: only negatives are provably bad
        return 0 <= index < len(self.rows)

    # -- mutations (each mirrors one session op exactly) -------------------

    def insert(self, cells: List[Cell]) -> None:
        if self.opaque:
            return
        self.rows.append(list(cells))
        self._refresh_poisoned()

    def delete(self, index: int) -> None:
        if self.opaque:
            return
        del self.rows[index]
        self._refresh_poisoned()

    def update(self, index: int, changes: Dict[str, Cell]) -> None:
        if self.opaque:
            return
        row = list(self.rows[index])
        for attr, cell in changes.items():
            row[self.schema.position(attr)] = cell
        self.rows[index] = row
        self._refresh_poisoned()

    def replace(self, index: int, cells: List[Cell]) -> None:
        if self.opaque:
            return
        self.rows[index] = list(cells)
        self._refresh_poisoned()

    def fill(self, index: int, attribute: str, value: Any) -> None:
        """Substitute the filled null *everywhere* (a shared null is one
        unknown), exactly as the session does."""
        if self.opaque:
            return
        target = self.rows[index][self.schema.position(attribute)]
        replacement: Cell = ("const", value)
        self.rows = [
            [replacement if cell == target else cell for cell in row]
            for row in self.rows
        ]
        self._refresh_poisoned()

    def adopt(self) -> None:
        """Forced substitutions become data — which ones is a fixpoint
        property, so every surviving null degrades to ``top``."""
        if self.opaque:
            return
        had_null = any(cell[0] == "null" for row in self.rows for cell in row)
        if not had_null:
            return
        self.rows = [
            [_TOP if cell[0] == "null" else cell for cell in row]
            for row in self.rows
        ]
        self.exact = False

    def snapshot(self) -> int:
        if self.opaque:
            self.snapshots.append(None)
        else:
            self.snapshots.append(
                ([list(row) for row in self.rows], self.poisoned)
            )
        return len(self.snapshots)

    def rollback(self) -> int:
        saved = self.snapshots.pop()
        if saved is None:
            # a snapshot taken before this checker existed (or while
            # opaque): its rows were never seen statically
            self.rows = []
            self.exact = False
            self.opaque = True
            self.poisoned = False
        else:
            self.rows = [list(row) for row in saved[0]]
            self.poisoned = saved[1]
            self.opaque = False
            self.exact = not any(
                cell == _TOP for row in self.rows for cell in row
            )
        return len(self.snapshots) + 1

    def discard_snapshots(self) -> int:
        discarded = len(self.snapshots)
        self.snapshots.clear()
        return discarded

    # -- the admissibility oracle ------------------------------------------

    def _materialize(self) -> Relation:
        """The abstract rows as a real relation (fresh nulls per call;
        only their sharing pattern matters)."""
        nulls: Dict[int, Null] = {}
        concrete = []
        for row in self.rows:
            values = []
            for cell in row:
                if cell[0] == "const":
                    values.append(cell[1])
                else:
                    number = cell[1]
                    if number not in nulls:
                        nulls[number] = Null(f"lint{number}")
                    values.append(nulls[number])
            concrete.append(values)
        return Relation(self.schema, concrete)

    def _refresh_poisoned(self) -> None:
        """Re-decide weak satisfiability of the abstract instance.

        Sound and complete while :attr:`exact`: the abstract rows are the
        raw rows, and Theorem 4(b) says the chase's NOTHING verdict *is*
        the weak-satisfiability verdict.  Inexact states never claim
        poisoning (tops could be anything)."""
        if not self.exact:
            self.poisoned = False
            return
        if not self.rows or not self.fds:
            self.poisoned = False
            return
        from ..chase.engine import chase  # local: analysis ← chase only here

        self.poisoned = chase(self._materialize(), self.fds).has_nothing

    def conflict_witness(self) -> Optional[str]:
        """An Armstrong-implication explanation of the poisoning, when a
        pairwise one exists: two rows provably equal on some FD's
        left-hand side whose closure forces distinct constants equal."""
        for fd in self.fds:
            lhs_positions = [self.schema.position(a) for a in fd.lhs]
            closure = attribute_closure(fd.lhs, self.fds)
            forced = [a for a in closure if a not in fd.lhs]
            if not forced:
                continue
            for i, first in enumerate(self.rows):
                for j in range(i + 1, len(self.rows)):
                    second = self.rows[j]
                    if any(
                        first[p] != second[p]
                        or first[p][0] != "const"
                        for p in lhs_positions
                    ):
                        continue
                    for attr in forced:
                        p = self.schema.position(attr)
                        a, b = first[p], second[p]
                        if a[0] == "const" and b[0] == "const" and a[1] != b[1]:
                            return (
                                f"rows {i} and {j} agree on {' '.join(fd.lhs)} "
                                f"but the FD set forces {attr} equal "
                                f"({a[1]!r} vs {b[1]!r}, via {fd!r})"
                            )
        return None


class ScriptLinter:
    """One pass over a whole script, every finding reported.

    A failing op is reported and *skipped* (the abstract state is left
    unchanged), so later diagnostics stay meaningful — the runtime, by
    contrast, aborts at the first failure.
    """

    def __init__(
        self,
        schema: RelationSchema,
        fds: Iterable[FDInput],
        rows: Optional[Iterable[Sequence[Any]]] = None,
        durable: bool = False,
    ) -> None:
        validated = [as_fd(fd).validate(schema).normalized() for fd in fds]
        self.state = _LintState(schema, validated, rows=rows, durable=durable)
        self.diagnostics: List[Diagnostic] = []

    # -- reporting helpers -------------------------------------------------

    def _report(
        self,
        line: int,
        op: str,
        code: str,
        message: str,
        hint: str = "",
        severity: str = "error",
    ) -> None:
        self.diagnostics.append(
            Diagnostic(
                code=code,
                line=line,
                op=op,
                message=message,
                hint=hint,
                severity=severity,
            )
        )

    def _int_arg(self, text: str, line: int, op: str, what: str) -> Optional[int]:
        text = text.strip()
        if not text:
            self._report(
                line, op, "E_MISSING_ARG", f"{what} is missing",
                hint=f"write: {op.split()[0]} <index> ...",
            )
            return None
        try:
            return int(text)
        except ValueError:
            self._report(
                line, op, "E_BAD_INT", f"{what} {text!r} is not an integer"
            )
            return None

    def _check_index(self, index: int, line: int, op: str) -> bool:
        if self.state.valid_index(index):
            return True
        self._report(
            line, op, "E_BAD_INDEX",
            f"no row at index {index} at this point "
            f"({len(self.state.rows)} row(s))",
        )
        return False

    def _check_row_cells(
        self, cells: List[Cell], line: int, op: str
    ) -> bool:
        schema = self.state.schema
        if len(cells) != len(schema):
            self._report(
                line, op, "E_ARITY",
                f"row has {len(cells)} cell(s); scheme "
                f"{schema.name} has {len(schema)} attribute(s)",
            )
            return False
        ok = True
        for attr, cell in zip(schema.attributes, cells):
            if cell[0] == "const" and not self.state.in_domain(attr, cell[1]):
                self._report(
                    line, op, "E_DOMAIN",
                    f"{cell[1]!r} is not in the declared domain of {attr}",
                    hint=f"domain({attr}) = "
                    f"{list(schema.domain(attr))!r}",
                )
                ok = False
        return ok

    def _maybe_conflict(self, line: int, op: str, was_poisoned: bool) -> None:
        state = self.state
        if state.poisoned and not was_poisoned:
            witness = state.conflict_witness()
            message = (
                witness
                or "the chase of the instance after this op derives NOTHING "
                "(weak satisfiability provably fails)"
            )
            self._report(
                line, op, "E_FD_CONFLICT", message,
                hint="the op executes but poisons the state; rollback or "
                "rewrite it",
                severity="warning",
            )

    # -- one op ------------------------------------------------------------

    def lint_line(self, lineno: int, raw_line: str) -> None:
        line = raw_line.split("#", 1)[0].strip()
        if not line:
            return
        op, _, rest = line.partition(" ")
        rest = rest.strip()
        state = self.state
        was_poisoned = state.poisoned

        if op == "insert":
            cells = [state.parse_cell(token) for token in rest.split(",")]
            if self._check_row_cells(cells, lineno, line):
                state.insert(cells)
                self._maybe_conflict(lineno, line, was_poisoned)

        elif op == "delete":
            index = self._int_arg(rest, lineno, line, "row index")
            if index is not None and self._check_index(index, lineno, line):
                state.delete(index)

        elif op == "update":
            index_text, _, assigns = rest.partition(" ")
            index = self._int_arg(index_text, lineno, line, "row index")
            changes: Dict[str, Cell] = {}
            ok = True
            for assign in assigns.split(","):
                attr, sep, value = assign.partition("=")
                if not sep:
                    self._report(
                        lineno, line, "E_BAD_ASSIGN",
                        f"bad assignment {assign.strip()!r}",
                        hint="write: update <index> ATTR=value, ATTR=value",
                    )
                    ok = False
                    continue
                attr = attr.strip()
                if attr not in state.schema:
                    self._report(
                        lineno, line, "E_UNKNOWN_ATTR",
                        f"unknown attribute {attr!r}",
                        hint=f"scheme attributes: "
                        f"{' '.join(state.schema.attributes)}",
                    )
                    ok = False
                    continue
                cell = state.parse_cell(value)
                if cell[0] == "const" and not state.in_domain(attr, cell[1]):
                    self._report(
                        lineno, line, "E_DOMAIN",
                        f"{cell[1]!r} is not in the declared domain of "
                        f"{attr}",
                    )
                    ok = False
                    continue
                changes[attr] = cell
            if index is None or not self._check_index(index, lineno, line):
                return
            if ok and changes:
                state.update(index, changes)
                self._maybe_conflict(lineno, line, was_poisoned)

        elif op == "replace":
            index_text, _, cells_text = rest.partition(" ")
            index = self._int_arg(index_text, lineno, line, "row index")
            cells = [state.parse_cell(token) for token in cells_text.split(",")]
            if index is None or not self._check_index(index, lineno, line):
                return
            if self._check_row_cells(cells, lineno, line):
                state.replace(index, cells)
                self._maybe_conflict(lineno, line, was_poisoned)

        elif op == "fill":
            parts = rest.split(None, 2)
            if len(parts) < 3:
                self._report(
                    lineno, line, "E_MISSING_ARG",
                    "fill needs: fill <index> <attr> <value>",
                )
                return
            index_text, attr, value = parts
            index = self._int_arg(index_text, lineno, line, "row index")
            if attr not in state.schema:
                self._report(
                    lineno, line, "E_UNKNOWN_ATTR",
                    f"unknown attribute {attr!r}",
                )
                return
            if index is None or not self._check_index(index, lineno, line):
                return
            cell = state.rows[index][state.schema.position(attr)]
            if cell[0] == "const":
                self._report(
                    lineno, line, "E_FILL_CONST",
                    f"row {index}.{attr} provably holds the constant "
                    f"{cell[1]!r}; fill targets nulls",
                )
                return
            if cell == _TOP:
                self._report(
                    lineno, line, "E_FILL_UNPROVEN",
                    f"row {index}.{attr} is no longer statically known to "
                    "be null (an earlier adopt may have committed a "
                    "constant there)",
                    hint="move the fill before the adopt, or drop it",
                )
                return
            if not state.in_domain(attr, value):
                self._report(
                    lineno, line, "E_DOMAIN",
                    f"{value!r} is not in the declared domain of {attr}",
                )
                return
            state.fill(index, attr, value)
            self._maybe_conflict(lineno, line, was_poisoned)

        elif op == "adopt":
            state.adopt()

        elif op == "snapshot":
            state.snapshot()

        elif op == "rollback":
            if not state.snapshots:
                self._report(
                    lineno, line, "E_ROLLBACK_UNDERFLOW",
                    "rollback without a snapshot",
                    hint="every rollback needs an earlier unmatched snapshot",
                )
                return
            state.rollback()

        elif op == "checkpoint":
            if not state.durable:
                self._report(
                    lineno, line, "E_CHECKPOINT_SCOPE",
                    "checkpoint is a durable-database op; use repro db",
                )
                return
            if state.snapshots:
                self._report(
                    lineno, line, "E_CHECKPOINT_HELD",
                    f"checkpoint with {len(state.snapshots)} outstanding "
                    "snapshot(s); roll back (or discard) first",
                )
                return

        elif op == "check":
            convention = rest or "weak"
            if convention not in _CONVENTIONS:
                self._report(
                    lineno, line, "E_CONVENTION",
                    f"unknown convention {convention!r}",
                    hint=f"conventions: {', '.join(_CONVENTIONS)}",
                )
                return
            if state.poisoned:
                self._report(
                    lineno, line, "E_FD_CONFLICT",
                    "check on a provably inconsistent instance (the chase "
                    "derives NOTHING here); TEST-FDs refuses it at runtime",
                )

        elif op in ("stats", "show", "explain"):
            pass

        else:
            self._report(
                lineno, line, "E_UNKNOWN_OP",
                f"unknown session op {op!r}",
                hint=f"ops: {', '.join(SCRIPT_OPS)}",
            )

    def lint(self, lines: Iterable[str]) -> List[Diagnostic]:
        for lineno, raw_line in enumerate(lines, start=1):
            self.lint_line(lineno, raw_line)
        return list(self.diagnostics)


def lint_script(
    schema: RelationSchema,
    fds: Iterable[FDInput],
    lines: Iterable[str],
    rows: Optional[Iterable[Sequence[Any]]] = None,
    durable: bool = False,
) -> List[Diagnostic]:
    """Analyze a whole op script; return every finding, in line order.

    ``rows`` seeds the abstract instance (the CSV a session would open
    with); ``durable`` switches to ``repro db ingest`` semantics (the
    ``checkpoint`` op becomes legal).
    """
    return ScriptLinter(schema, fds, rows=rows, durable=durable).lint(lines)


def has_errors(diagnostics: Iterable[Diagnostic]) -> bool:
    return any(d.severity == "error" for d in diagnostics)


# ---------------------------------------------------------------------------
# server batches
# ---------------------------------------------------------------------------

#: re-exported from :mod:`repro.opschema` — the server's
#: ``MUTATION_VERBS`` derives from the same table, so the two tuples
#: cannot drift (tests/analysis/test_batch_lint.py pins them equal)
from ..opschema import BATCH_VERBS  # noqa: E402


def _summarize_request(request: Any) -> str:
    if not isinstance(request, dict):
        return repr(request)[:80]
    verb = request.get("do", "?")
    keys = [k for k in sorted(request) if k not in ("do", "id", "rel")]
    return f"{verb}({', '.join(keys)})" if keys else str(verb)


class BatchLinter:
    """Static admission check for a server mutation batch.

    Indexes are 0-based request positions (the ``line`` field of each
    diagnostic).  Bounds use *admission-time* semantics: the relation's
    current row count plus the batch's own net effect so far — exact
    because the writer applies an admitted batch contiguously (it is one
    queue item; no interleaving op can change the count mid-batch).
    """

    def __init__(
        self,
        schema: RelationSchema,
        fds: Iterable[FDInput],
        rows: Iterable[Sequence[Any]],
        snapshot_depth: int = 0,
        known_null: Optional[Any] = None,
        decode: Optional[Any] = None,
    ) -> None:
        validated = [as_fd(fd).validate(schema).normalized() for fd in fds]
        self.state = _LintState(
            schema, validated, rows=rows, snapshot_depth=snapshot_depth,
            durable=True,
        )
        #: ``known_null(name) -> bool``: has the relation's codec scope
        #: minted this canonical id?  (decode is lenient — an unknown id
        #: silently materializes a fresh null — so this is static-only)
        self._known_null = known_null or (lambda name: True)
        #: optional concrete decoder (the relation codec) used to type-check
        #: tokens; falls back to a structural check
        self._decode = decode
        self.diagnostics: List[Diagnostic] = []
        #: cells decoded for tracking share the checker's null numbering
        #: per canonical id, so ``{"n": "x"}`` twice is one unknown
        self._null_cells: Dict[str, Cell] = {}

    def _report(
        self, index: int, request: Any, code: str, message: str,
        hint: str = "", severity: str = "error",
    ) -> None:
        self.diagnostics.append(
            Diagnostic(
                code=code,
                line=index,
                op=_summarize_request(request),
                message=message,
                hint=hint,
                severity=severity,
            )
        )

    # -- cells -------------------------------------------------------------

    def _lift_token(
        self, token: Any, index: int, request: dict
    ) -> Optional[Cell]:
        """One wire cell token → abstract cell; None reports and fails."""
        if isinstance(token, dict):
            if "n" in token:
                name = token["n"]
                if name is None:  # mint-a-fresh-null extension
                    return self.state.fresh_null()
                if not isinstance(name, str):
                    self._report(
                        index, request, "E_BAD_CELL",
                        f"malformed null token {token!r}",
                    )
                    return None
                if not self._known_null(name):
                    self._report(
                        index, request, "E_UNKNOWN_NULL",
                        f"null id {name!r} was never minted by this "
                        "relation",
                        hint='send {"n": null} to mint a fresh null',
                    )
                    return None
                cell = self._null_cells.get(name)
                if cell is None:
                    cell = self.state.fresh_null()
                    self._null_cells[name] = cell
                return cell
            if "!" in token:
                return _TOP  # NOTHING: legal to store, nothing provable
            if "v" in token:
                value = token["v"]
                if value is not None and not isinstance(
                    value, (str, int, float, bool)
                ):
                    # decoding is lenient about the payload, but the op's
                    # own journal record would fail to *encode* it
                    self._report(
                        index, request, "E_BAD_CELL",
                        f"constant {value!r} of type "
                        f"{type(value).__name__} is not JSON-serializable",
                    )
                    return None
                return ("const", value)
            self._report(
                index, request, "E_BAD_CELL",
                f"unknown value token {token!r}",
            )
            return None
        if self._decode is not None:
            try:
                self._decode(token)
            except CodecError as error:
                self._report(index, request, "E_BAD_CELL", str(error))
                return None
        elif not (
            token is None or isinstance(token, (str, int, float, bool))
        ):
            self._report(
                index, request, "E_BAD_CELL",
                f"unknown value token {token!r}",
            )
            return None
        return ("const", token)

    def _lift_row(
        self, cells: Any, index: int, request: dict, what: str
    ) -> Optional[List[Cell]]:
        if not isinstance(cells, (list, tuple)):
            self._report(
                index, request, "E_BAD_REQUEST",
                f"{what} must be an array of cells",
            )
            return None
        lifted = []
        for token in cells:
            cell = self._lift_token(token, index, request)
            if cell is None:
                return None
            lifted.append(cell)
        schema = self.state.schema
        if len(lifted) != len(schema):
            self._report(
                index, request, "E_ARITY",
                f"row has {len(lifted)} cell(s); scheme {schema.name} "
                f"has {len(schema)} attribute(s)",
            )
            return None
        for attr, cell in zip(schema.attributes, lifted):
            if cell[0] == "const" and not self.state.in_domain(attr, cell[1]):
                self._report(
                    index, request, "E_DOMAIN",
                    f"{cell[1]!r} is not in the declared domain of {attr}",
                )
                return None
        return lifted

    def _int_field(
        self, request: dict, index: int
    ) -> Optional[int]:
        value = request.get("index")
        if not isinstance(value, int) or isinstance(value, bool):
            self._report(
                index, request, "E_BAD_INT", "'index' must be an integer"
            )
            return None
        if not self.state.valid_index(value):
            self._report(
                index, request, "E_BAD_INDEX",
                f"no row at index {value} at this point in the batch "
                f"({len(self.state.rows)} row(s))",
            )
            return None
        return value

    # -- one request -------------------------------------------------------

    def lint_request(self, index: int, request: Any) -> None:
        state = self.state
        if not isinstance(request, dict):
            self._report(
                index, request, "E_BAD_REQUEST",
                "each batch op must be a JSON object with a 'do' verb",
            )
            return
        verb = request.get("do")
        if verb not in BATCH_VERBS:
            self._report(
                index, request, "E_UNKNOWN_VERB",
                f"unknown mutation verb {verb!r}",
                hint=f"mutation verbs: {', '.join(BATCH_VERBS)}",
            )
            return
        was_poisoned = state.poisoned

        if verb == "insert":
            cells = self._lift_row(request.get("row"), index, request, "'row'")
            if cells is not None:
                state.insert(cells)
                self._batch_conflict(index, request, was_poisoned)

        elif verb == "delete":
            row_index = self._int_field(request, index)
            if row_index is not None:
                state.delete(row_index)

        elif verb == "update":
            row_index = self._int_field(request, index)
            changes = request.get("set")
            if not isinstance(changes, dict) or not changes:
                self._report(
                    index, request, "E_BAD_REQUEST",
                    "'set' must be a non-empty object of attr: cell",
                )
                return
            decoded: Dict[str, Cell] = {}
            for attr, token in changes.items():
                if attr not in state.schema:
                    self._report(
                        index, request, "E_UNKNOWN_ATTR",
                        f"unknown attribute {attr!r}",
                    )
                    return
                cell = self._lift_token(token, index, request)
                if cell is None:
                    return
                if cell[0] == "const" and not state.in_domain(attr, cell[1]):
                    self._report(
                        index, request, "E_DOMAIN",
                        f"{cell[1]!r} is not in the declared domain of "
                        f"{attr}",
                    )
                    return
                decoded[attr] = cell
            if row_index is None:
                return
            state.update(row_index, decoded)
            self._batch_conflict(index, request, was_poisoned)

        elif verb == "replace":
            row_index = self._int_field(request, index)
            cells = self._lift_row(request.get("row"), index, request, "'row'")
            if row_index is None or cells is None:
                return
            state.replace(row_index, cells)
            self._batch_conflict(index, request, was_poisoned)

        elif verb == "fill":
            row_index = self._int_field(request, index)
            attr = request.get("attr")
            if not isinstance(attr, str):
                self._report(
                    index, request, "E_BAD_REQUEST",
                    "'attr' must be an attribute name",
                )
                return
            if attr not in state.schema:
                self._report(
                    index, request, "E_UNKNOWN_ATTR",
                    f"unknown attribute {attr!r}",
                )
                return
            cell = self._lift_token(request.get("value"), index, request)
            if row_index is None or cell is None:
                return
            if state.opaque:
                return  # cell facts unavailable past an opaque rollback
            target = state.rows[row_index][state.schema.position(attr)]
            if target[0] == "const":
                self._report(
                    index, request, "E_FILL_CONST",
                    f"row {row_index}.{attr} provably holds the constant "
                    f"{target[1]!r}; fill targets nulls",
                )
                return
            if target == _TOP:
                self._report(
                    index, request, "E_FILL_UNPROVEN",
                    f"row {row_index}.{attr} is no longer statically known "
                    "to be null",
                )
                return
            if cell[0] != "const":
                return  # filling with a null: no static claim
            if not state.in_domain(attr, cell[1]):
                self._report(
                    index, request, "E_DOMAIN",
                    f"{cell[1]!r} is not in the declared domain of {attr}",
                )
                return
            state.fill(row_index, attr, cell[1])
            self._batch_conflict(index, request, was_poisoned)

        elif verb == "reset":
            rows_spec = request.get("rows")
            if not isinstance(rows_spec, list):
                self._report(
                    index, request, "E_BAD_REQUEST",
                    "'rows' must be an array of rows",
                )
                return
            lifted_rows = []
            for cells in rows_spec:
                lifted = self._lift_row(cells, index, request, "each row")
                if lifted is None:
                    return
                lifted_rows.append(lifted)
            # reset replaces the state wholesale, so it restores full
            # static visibility even past an opaque rollback
            state.rows = lifted_rows
            state.opaque = False
            state.exact = not any(
                cell == _TOP for row in lifted_rows for cell in row
            )
            state._refresh_poisoned()
            self._batch_conflict(index, request, was_poisoned)

        elif verb == "adopt":
            state.adopt()

        elif verb == "snapshot":
            state.snapshot()

        elif verb == "rollback":
            if not state.snapshots:
                self._report(
                    index, request, "E_ROLLBACK_UNDERFLOW",
                    "rollback without a snapshot",
                )
                return
            state.rollback()

        elif verb == "discard":
            state.discard_snapshots()

    def _batch_conflict(
        self, index: int, request: dict, was_poisoned: bool
    ) -> None:
        if self.state.poisoned and not was_poisoned:
            witness = self.state.conflict_witness()
            self._report(
                index, request, "E_FD_CONFLICT",
                witness
                or "the chase of the instance after this op derives NOTHING",
                severity="warning",
            )

    def lint(self, requests: Sequence[Any]) -> List[Diagnostic]:
        for index, request in enumerate(requests):
            self.lint_request(index, request)
        return list(self.diagnostics)


def lint_requests(
    schema: RelationSchema,
    fds: Iterable[FDInput],
    requests: Sequence[Any],
    rows: Iterable[Sequence[Any]] = (),
    snapshot_depth: int = 0,
    known_null: Optional[Any] = None,
    decode: Optional[Any] = None,
) -> List[Diagnostic]:
    """Analyze a server mutation batch against the relation's live state.

    ``rows`` is the relation's current raw rows (the admission-time
    baseline), ``snapshot_depth`` its outstanding snapshot count,
    ``known_null`` the codec-scope membership test, ``decode`` the
    concrete cell decoder used for token type checks.
    """
    return BatchLinter(
        schema, fds, rows, snapshot_depth=snapshot_depth,
        known_null=known_null, decode=decode,
    ).lint(requests)


# ---------------------------------------------------------------------------
# query scripts and the query verb
# ---------------------------------------------------------------------------

_QUERY_MODES = ("least", "kleene")


def _query_diag(code, line, op, message, hint=""):
    return Diagnostic(code=code, line=line, op=op, message=message, hint=hint)


def lint_query_script(
    catalog: Mapping[str, RelationSchema],
    lines: Iterable[str],
    stats: Optional[Mapping[str, Any]] = None,
    fds: Optional[Mapping[str, Any]] = None,
    mode: str = "least",
) -> List[Diagnostic]:
    """Statically check a ``repro query`` script against a catalog.

    One diagnostic per failing statement, pinned to its 1-based line
    number: parse failures as ``E_BAD_REQUEST``, scans of relations the
    catalog lacks as ``E_UNKNOWN_RELATION``, attribute/scheme mistakes
    as ``E_UNKNOWN_ATTR`` / ``E_ARITY`` (the same
    :func:`repro.query.algebra.output_schema` checker the evaluator and
    the server run, so lint verdicts match execution exactly).
    Bindings accumulate like the REPL's; a statement that failed does
    not bind, and later uses of its name surface as unknown relations.

    Statements that pass the schema check are then plan-linted
    (:func:`repro.analysis.plan.lint_query_plan`): cross products, dead
    union arms, statically unsatisfiable subtrees, and — when ``stats``
    carries instance statistics — grounding blow-ups, all pinned to the
    same line numbers.
    """
    from ..query.algebra import QueryError, output_schema
    from ..query.parser import QueryParseError, parse_statement
    from .plan import lint_query_plan

    diagnostics: List[Diagnostic] = []
    bindings: Dict[str, Any] = {}
    for lineno, raw_line in enumerate(lines, start=1):
        op_text = raw_line.strip()
        try:
            statement = parse_statement(raw_line, bindings)
        except QueryParseError as error:
            diagnostics.append(
                _query_diag(
                    "E_BAD_REQUEST", lineno, op_text, str(error),
                    hint="syntax: scan | where | [attrs] | rename | join "
                    "| union | minus",
                )
            )
            continue
        if statement.kind == "blank":
            continue
        assert statement.node is not None
        try:
            output_schema(statement.node, catalog)
        except QueryError as error:
            hint = ""
            if error.code == "E_UNKNOWN_RELATION" and bindings:
                # the message lists catalog relations; bound names are
                # also scannable here, so surface them too
                hint = f"bound here: {', '.join(sorted(bindings))}"
            diagnostics.append(
                _query_diag(error.code, lineno, op_text, str(error), hint)
            )
            continue
        diagnostics.extend(
            lint_query_plan(
                catalog,
                statement.node,
                stats=stats,
                fds=fds,
                mode=mode,
                line=lineno,
                op=op_text,
            )
        )
        if statement.kind == "bind":
            assert statement.name is not None
            bindings[statement.name] = statement.node
    return diagnostics


def lint_query_request(
    catalog: Mapping[str, RelationSchema],
    request: Any,
    line: int = 0,
    stats: Optional[Mapping[str, Any]] = None,
    fds: Optional[Mapping[str, Any]] = None,
) -> List[Diagnostic]:
    """Statically check one wire ``query`` request (no evaluation).

    The serving layer runs this as its admission gate, exactly like the
    batch pre-pass: a request with any error-severity finding is refused
    before a single relation is leased.  ``line`` is the request index
    in the server's refusal payload convention (0-based).

    With ``stats`` (relation name →
    :class:`~repro.query.optimize.RelationStats`) the plan linter also
    runs, so a grounding blow-up in least mode — a certain runtime
    :class:`~repro.errors.DomainError` — refuses the request up front;
    warning-grade plan findings ride back in the success payload.
    """
    from ..query.algebra import QueryError, output_schema
    from ..query.parser import QueryParseError, parse_query
    from .plan import lint_query_plan

    summary = _summarize_request(request)
    if not isinstance(request, dict):
        return [
            _query_diag(
                "E_BAD_REQUEST", line, summary, "request must be an object"
            )
        ]
    text = request.get("q")
    if not isinstance(text, str) or not text.strip():
        return [
            _query_diag(
                "E_BAD_REQUEST", line, summary,
                "'query' needs 'q' (a non-empty query string)",
            )
        ]
    diagnostics: List[Diagnostic] = []
    mode = request.get("mode", "least")
    if mode not in _QUERY_MODES:
        diagnostics.append(
            _query_diag(
                "E_BAD_REQUEST", line, summary,
                f"unknown evaluation mode {mode!r}",
                hint=f"modes: {', '.join(_QUERY_MODES)}",
            )
        )
    try:
        node = parse_query(text)
    except QueryParseError as error:
        diagnostics.append(
            _query_diag("E_BAD_REQUEST", line, summary, str(error))
        )
        return diagnostics
    try:
        output_schema(node, catalog)
    except QueryError as error:
        diagnostics.append(
            _query_diag(error.code, line, summary, str(error))
        )
        return diagnostics
    lint_mode = mode if mode in _QUERY_MODES else "least"
    diagnostics.extend(
        lint_query_plan(
            catalog,
            node,
            stats=stats,
            fds=fds,
            mode=lint_mode,
            line=line,
            op=summary,
        )
    )
    return diagnostics
