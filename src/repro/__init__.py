"""repro — Functional Dependencies and Incomplete Information.

A complete, from-scratch reproduction of Yannis Vassiliou's VLDB 1980 paper
"Functional Dependencies and Incomplete Information": the three-valued FD
interpretation over relations with nulls (Proposition 1), strong and weak
satisfiability, the System-C equivalence and Armstrong completeness
(Theorem 1), the NS-rule chase with null-equality constraints and its
Church-Rosser extension (Theorem 4), and the TEST-FDs algorithm family
(Figure 3, Theorems 2-3) — plus the classical FD-theory and normalization
substrate the paper builds on.

Quick tour::

    from repro import (
        Domain, FD, FDSet, Relation, RelationSchema, null,
        evaluate_fd, strongly_holds, weakly_satisfied,
        minimally_incomplete, check_fds, ChaseSession,
    )

    schema = RelationSchema("R", "A B C", domains={"A": Domain(["a1", "a2"])})
    r = Relation(schema, [(null(), "b1", "c1"), ("a1", "b1", "c2"),
                          ("a2", "b1", "c3")])
    evaluate_fd("A B -> C", r[0], r)     # -> false   (Figure 2, case F2)

    session = ChaseSession(schema, ["A -> B"])   # stateful: maintains the
    session.insert(("a1", null(), "c1"))         # Theorem-4 fixpoint across
    session.insert(("a1", "b1", "c2"))           # inserts/deletes/updates
    session.result().relation                    # null grounded to "b1"

    from repro import Database                   # durable: the same session
    db = Database.open("/var/lib/fds")           # behind a write-ahead op
    db.create("r", schema, ["A -> B"])           # log with crash recovery
    db["r"].insert(("a1", null(), "c1"))         # journalled, then applied

See ``README.md`` for the system tour, ``ROADMAP.md`` for the growth plan,
and ``benchmarks/`` for the per-figure experiment series.
"""

from .core import (
    FALSE,
    FD,
    FDSet,
    NOTHING,
    TRUE,
    UNKNOWN,
    Domain,
    Null,
    Proposition1Result,
    Relation,
    RelationSchema,
    Row,
    TruthValue,
    UNBOUNDED,
    as_fd,
    evaluate_fd,
    evaluate_fd_brute,
    fd_value_profile,
    holds_classical,
    is_null,
    lub,
    null,
    proposition1_case,
    satisfying_completion,
    strongly_holds,
    strongly_satisfied,
    weakly_holds,
    weakly_holds_each,
    weakly_satisfied,
)
from .errors import (
    ConventionError,
    DomainError,
    InconsistentInstanceError,
    NotMinimallyIncompleteError,
    NullsNotAllowedError,
    ReproError,
    SchemaError,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # core data model
    "Domain",
    "UNBOUNDED",
    "FD",
    "FDSet",
    "NOTHING",
    "Null",
    "Relation",
    "RelationSchema",
    "Row",
    "null",
    "is_null",
    # truth values
    "TRUE",
    "FALSE",
    "UNKNOWN",
    "TruthValue",
    "lub",
    # interpretation + satisfaction
    "as_fd",
    "evaluate_fd",
    "evaluate_fd_brute",
    "proposition1_case",
    "Proposition1Result",
    "fd_value_profile",
    "holds_classical",
    "strongly_holds",
    "strongly_satisfied",
    "weakly_holds",
    "weakly_holds_each",
    "weakly_satisfied",
    "satisfying_completion",
    # errors
    "ReproError",
    "SchemaError",
    "DomainError",
    "NullsNotAllowedError",
    "ConventionError",
    "NotMinimallyIncompleteError",
    "InconsistentInstanceError",
]


def _late_imports() -> None:
    """Extend the top-level namespace with the higher layers.

    Kept in a function so that a partial checkout (core only) still imports;
    the full library always succeeds.
    """
    global minimally_incomplete, weakly_satisfiable, check_fds  # noqa: PLW0603
    global ChaseSession, GuardedRelation, Database  # noqa: PLW0603
    global explain_chase, explain_fd_value  # noqa: PLW0603

    from .chase import ChaseSession as _cs
    from .chase import minimally_incomplete as _mi
    from .chase import weakly_satisfiable as _ws
    from .db import Database as _db
    from .explain import explain_chase as _ec
    from .explain import explain_fd_value as _ef
    from .testfd import check_fds as _cf
    from .updates import GuardedRelation as _gr

    minimally_incomplete = _mi
    weakly_satisfiable = _ws
    check_fds = _cf
    ChaseSession = _cs
    GuardedRelation = _gr
    Database = _db
    explain_chase = _ec
    explain_fd_value = _ef
    __all__.extend(
        [
            "minimally_incomplete",
            "weakly_satisfiable",
            "check_fds",
            "ChaseSession",
            "GuardedRelation",
            "Database",
            "explain_chase",
            "explain_fd_value",
        ]
    )


try:  # pragma: no cover - exercised implicitly by every import
    _late_imports()
except ImportError:  # pragma: no cover - partial-checkout fallback
    pass
