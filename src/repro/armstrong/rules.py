"""Armstrong's axioms as named, checkable rules over FDs.

Theorem 1 of the paper: *Armstrong's inference rules are sound and complete
for functional dependencies defined on relations with nulls and the
requirement of strong satisfiability.*  This module gives the axioms a
first-class, FD-typed form:

* soundness checkers for single rule applications
  (:func:`check_reflexivity` etc., used by property tests that pit each
  axiom against brute-force completion semantics);
* :func:`derive_fd` — a full derivation of an implied FD, delegated to the
  I-rule proof system of :mod:`repro.logic.derivation` through the
  statement bridge (the derivation *is* the section-5 reduction in action).
"""

from __future__ import annotations

from typing import Iterable, Optional

from ..core.attributes import is_subset, parse_attrs
from ..core.fd import FD, FDInput, as_fd
from ..logic.derivation import Derivation, derive
from ..logic.implicational import ImplicationalStatement


def check_reflexivity(fd: FDInput) -> bool:
    """Axiom: if ``Y ⊆ X`` then ``X -> Y``."""
    fd = as_fd(fd)
    return is_subset(fd.rhs, fd.lhs)


def check_augmentation(premise: FDInput, conclusion: FDInput) -> bool:
    """Axiom: from ``X -> Y`` infer ``XZ -> YZ`` (any ``Z``)."""
    premise, conclusion = as_fd(premise), as_fd(conclusion)
    x, y = set(premise.lhs), set(premise.rhs)
    z = (set(conclusion.lhs) - x) | (set(conclusion.rhs) - y)
    return set(conclusion.lhs) == x | z and set(conclusion.rhs) == y | z


def check_transitivity(
    first: FDInput, second: FDInput, conclusion: FDInput
) -> bool:
    """Axiom: from ``X -> Y`` and ``Y -> Z`` infer ``X -> Z``."""
    first, second, conclusion = as_fd(first), as_fd(second), as_fd(conclusion)
    return (
        set(first.lhs) == set(conclusion.lhs)
        and set(first.rhs) == set(second.lhs)
        and set(second.rhs) == set(conclusion.rhs)
    )


def check_union(first: FDInput, second: FDInput, conclusion: FDInput) -> bool:
    """Derived rule: from ``X -> Y`` and ``X -> Z`` infer ``X -> YZ``."""
    first, second, conclusion = as_fd(first), as_fd(second), as_fd(conclusion)
    return (
        set(first.lhs) == set(conclusion.lhs)
        and set(second.lhs) == set(conclusion.lhs)
        and set(conclusion.rhs) == set(first.rhs) | set(second.rhs)
    )


def check_decomposition(premise: FDInput, conclusion: FDInput) -> bool:
    """Derived rule: from ``X -> YZ`` infer ``X -> Y``."""
    premise, conclusion = as_fd(premise), as_fd(conclusion)
    return set(premise.lhs) == set(conclusion.lhs) and set(conclusion.rhs) <= set(
        premise.rhs
    )


def check_pseudotransitivity(
    first: FDInput, second: FDInput, conclusion: FDInput
) -> bool:
    """Derived rule: from ``X -> Y`` and ``WY -> Z`` infer ``WX -> Z``."""
    first, second, conclusion = as_fd(first), as_fd(second), as_fd(conclusion)
    x, y = set(first.lhs), set(first.rhs)
    if not y <= set(second.lhs):
        return False
    w = set(second.lhs) - y
    return set(conclusion.lhs) == w | x and set(conclusion.rhs) == set(second.rhs)


def derive_fd(fds: Iterable[FDInput], goal: FDInput) -> Optional[Derivation]:
    """An explicit derivation of ``goal`` from ``fds``, or ``None``.

    The proof is constructed in the implicational-statement system (I1-I4)
    — the section-5 reduction — and is verifiable via
    :meth:`repro.logic.derivation.Derivation.verify`.
    """
    statements = [ImplicationalStatement.from_fd(fd) for fd in fds]
    return derive(statements, ImplicationalStatement.from_fd(goal))
