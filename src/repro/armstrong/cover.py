"""Minimal (canonical) covers of FD sets.

A *minimal cover* of ``F`` is an equivalent set ``G`` where every right-hand
side is a single attribute, no left-hand side contains an extraneous
attribute, and no member is redundant.  Minimal covers feed 3NF synthesis
(:mod:`repro.normalization.synthesize`) and keep chase/benchmark FD sets
small.

The construction is the standard three-pass algorithm; passes are applied
in a deterministic order so results are reproducible run to run.
"""

from __future__ import annotations

from typing import Iterable, List

from ..core.fd import FD, FDInput, FDSet, as_fd
from .closure import attribute_closure_linear
from .implication import equivalent, implies


def right_reduce(fds: Iterable[FDInput]) -> List[FD]:
    """Split right-hand sides to single attributes (drop trivial parts)."""
    out: List[FD] = []
    seen: set = set()
    for fd in (as_fd(f) for f in fds):
        for attr in fd.rhs:
            if attr in fd.lhs:
                continue  # trivial component
            single = FD(fd.lhs, (attr,))
            if single not in seen:
                seen.add(single)
                out.append(single)
    return out


def left_reduce(fds: Iterable[FDInput]) -> List[FD]:
    """Remove extraneous left-hand attributes.

    An attribute ``a ∈ X`` is extraneous in ``X -> Y`` when
    ``Y ⊆ closure(X - a, F)``; removal preserves equivalence.  Attributes
    are tried in the FD's declared order.
    """
    working: List[FD] = [as_fd(f) for f in fds]
    for index, fd in enumerate(working):
        lhs = list(fd.lhs)
        changed = True
        while changed and len(lhs) > 1:
            changed = False
            for attr in list(lhs):
                candidate = [a for a in lhs if a != attr]
                if set(fd.rhs) <= attribute_closure_linear(candidate, working):
                    lhs = candidate
                    working[index] = FD(lhs, fd.rhs)
                    fd = working[index]
                    changed = True
                    break
    return working


def remove_redundant(fds: Iterable[FDInput]) -> List[FD]:
    """Drop FDs implied by the remaining ones (first-to-last order)."""
    working: List[FD] = [as_fd(f) for f in fds]
    index = 0
    while index < len(working):
        rest = working[:index] + working[index + 1 :]
        if implies(rest, working[index]):
            working.pop(index)
        else:
            index += 1
    return working


def minimal_cover(fds: Iterable[FDInput]) -> FDSet:
    """A minimal cover: right-reduced, left-reduced, irredundant."""
    return FDSet(remove_redundant(left_reduce(right_reduce(fds))))


def is_minimal(fds: Iterable[FDInput]) -> bool:
    """Check the three minimality conditions directly."""
    fd_list = [as_fd(f) for f in fds]
    for fd in fd_list:
        if len(fd.rhs) != 1 or fd.is_trivial():
            return False
    for index, fd in enumerate(fd_list):
        rest = fd_list[:index] + fd_list[index + 1 :]
        if implies(rest, fd):
            return False
        if len(fd.lhs) > 1:
            for attr in fd.lhs:
                reduced = FD([a for a in fd.lhs if a != attr], fd.rhs)
                if implies(fd_list, reduced):
                    return False
    return True
