"""Classical FD theory: closure, implication, covers, keys (section 3/5).

By Theorem 1, everything here applies unchanged to relations with nulls
under strong satisfiability — that is the paper's licence to reuse
normalization theory in the presence of incomplete information.
"""

from .closure import (
    attribute_closure,
    attribute_closure_linear,
    closure_trace,
)
from .cover import (
    is_minimal,
    left_reduce,
    minimal_cover,
    remove_redundant,
    right_reduce,
)
from .implication import (
    equivalent,
    implied_fds,
    implies,
    implies_all,
    is_redundant,
    membership_equivalence_class,
)
from .keys import (
    candidate_keys,
    is_candidate_key,
    is_superkey,
    prime_attributes,
    shrink_to_key,
)
from .rules import (
    check_augmentation,
    check_decomposition,
    check_pseudotransitivity,
    check_reflexivity,
    check_transitivity,
    check_union,
    derive_fd,
)

__all__ = [
    "attribute_closure",
    "attribute_closure_linear",
    "closure_trace",
    "is_minimal",
    "left_reduce",
    "minimal_cover",
    "remove_redundant",
    "right_reduce",
    "equivalent",
    "implied_fds",
    "implies",
    "implies_all",
    "is_redundant",
    "membership_equivalence_class",
    "candidate_keys",
    "is_candidate_key",
    "is_superkey",
    "prime_attributes",
    "shrink_to_key",
    "check_augmentation",
    "check_decomposition",
    "check_pseudotransitivity",
    "check_reflexivity",
    "check_transitivity",
    "check_union",
    "derive_fd",
]
