"""Candidate keys of a relation scheme under an FD set.

Keys are what normalization (section 5's application domain) revolves
around: BCNF asks every FD's determinant to be a superkey, 3NF tolerates
prime right-hand sides.  Enumeration follows the Lucchesi–Osborn strategy:
start from one key obtained by shrinking the full attribute set, then for
each found key ``K`` and FD ``X -> Y``, try ``(K - Y) ∪ X`` as the seed of a
new key.
"""

from __future__ import annotations

from collections import deque
from typing import FrozenSet, Iterable, List, Set, Tuple

from ..core.attributes import AttrsInput, parse_attrs
from ..core.fd import FDInput, as_fd
from .closure import attribute_closure_linear


def is_superkey(
    attributes: AttrsInput, candidate: AttrsInput, fds: Iterable[FDInput]
) -> bool:
    """Does ``candidate`` determine every attribute of the scheme?"""
    universe = set(parse_attrs(attributes))
    return universe <= attribute_closure_linear(candidate, fds)


def shrink_to_key(
    attributes: AttrsInput, seed: AttrsInput, fds: Iterable[FDInput]
) -> Tuple[str, ...]:
    """Remove attributes from ``seed`` while it stays a superkey.

    Deterministic: attributes are tried in the seed's declared order, so the
    same inputs always yield the same key.
    """
    fd_list = [as_fd(f) for f in fds]
    key: List[str] = list(parse_attrs(seed))
    for attr in list(key):
        candidate = [a for a in key if a != attr]
        if candidate and is_superkey(attributes, candidate, fd_list):
            key = candidate
    return tuple(key)


def candidate_keys(
    attributes: AttrsInput, fds: Iterable[FDInput], limit: int = 10_000
) -> List[Tuple[str, ...]]:
    """All candidate (minimal) keys, in discovery order.

    Lucchesi–Osborn saturation; ``limit`` bounds the queue for pathological
    inputs (the number of keys can be exponential).
    """
    attrs = parse_attrs(attributes)
    fd_list = [as_fd(f) for f in fds]
    first = shrink_to_key(attrs, attrs, fd_list)
    keys: List[Tuple[str, ...]] = [first]
    seen: Set[FrozenSet[str]] = {frozenset(first)}
    queue: deque = deque([first])
    while queue:
        key = queue.popleft()
        for fd in fd_list:
            seed = tuple(a for a in attrs if (a in fd.lhs) or (a in key and a not in fd.rhs))
            if not is_superkey(attrs, seed, fd_list):
                continue  # seed isn't a superkey: no new key from this FD
            candidate = shrink_to_key(attrs, seed, fd_list)
            marker = frozenset(candidate)
            if marker not in seen:
                if len(keys) >= limit:
                    raise RuntimeError(
                        f"more than {limit} candidate keys; raise `limit` "
                        "if this is intentional"
                    )
                seen.add(marker)
                keys.append(candidate)
                queue.append(candidate)
    return keys


def is_candidate_key(
    attributes: AttrsInput, candidate: AttrsInput, fds: Iterable[FDInput]
) -> bool:
    """A superkey none of whose proper subsets is a superkey."""
    cand = parse_attrs(candidate)
    fd_list = [as_fd(f) for f in fds]
    if not is_superkey(attributes, cand, fd_list):
        return False
    return all(
        not is_superkey(attributes, [a for a in cand if a != attr], fd_list)
        for attr in cand
        if len(cand) > 1
    )


def prime_attributes(
    attributes: AttrsInput, fds: Iterable[FDInput]
) -> FrozenSet[str]:
    """Attributes occurring in at least one candidate key (3NF's notion)."""
    found: Set[str] = set()
    for key in candidate_keys(attributes, fds):
        found.update(key)
    return frozenset(found)
