"""FD implication, equivalence of FD sets, and restricted FD-set closure.

The membership test ``F ⊨ f`` through attribute closure is Armstrong-
complete for classical relations, and — by the paper's Theorem 1 — remains
sound and complete for relations with nulls under *strong* satisfiability.
(For the weak notion no such test exists per-FD: see section 6 and
:mod:`repro.chase`.)
"""

from __future__ import annotations

import itertools
from typing import FrozenSet, Iterable, List, Sequence, Set, Tuple

from ..core.attributes import AttrsInput, parse_attrs
from ..core.fd import FD, FDInput, FDSet, as_fd
from .closure import attribute_closure_linear


def implies(fds: Iterable[FDInput], fd: FDInput) -> bool:
    """``F ⊨ X -> Y``: is the FD a logical consequence of the set?"""
    fd = as_fd(fd)
    return set(fd.rhs) <= attribute_closure_linear(fd.lhs, fds)


def implies_all(fds: Iterable[FDInput], goals: Iterable[FDInput]) -> bool:
    """Every goal FD is implied by ``fds``."""
    fd_list = [as_fd(f) for f in fds]
    return all(implies(fd_list, goal) for goal in goals)


def equivalent(first: Iterable[FDInput], second: Iterable[FDInput]) -> bool:
    """Two FD sets are equivalent (each implies the other's members)."""
    first_list = [as_fd(f) for f in first]
    second_list = [as_fd(f) for f in second]
    return implies_all(first_list, second_list) and implies_all(
        second_list, first_list
    )


def is_redundant(fds: Sequence[FDInput], index: int) -> bool:
    """Is the ``index``-th FD implied by the others?"""
    fd_list = [as_fd(f) for f in fds]
    target = fd_list[index]
    rest = fd_list[:index] + fd_list[index + 1 :]
    return implies(rest, target)


def implied_fds(
    fds: Iterable[FDInput],
    attributes: AttrsInput,
    max_lhs: int | None = None,
    nontrivial_only: bool = True,
) -> List[FD]:
    """All FDs over ``attributes`` implied by ``fds`` (restricted closure F+).

    For each candidate left-hand side ``X`` the maximal implied FD is
    ``X -> closure(X)``; we emit that one (right-hand sides of smaller FDs
    are its decompositions).  Exponential in ``len(attributes)``; ``max_lhs``
    truncates the LHS size for the larger schemas used in benches.
    """
    attrs = parse_attrs(attributes)
    fd_list = [as_fd(f) for f in fds]
    bound = len(attrs) if max_lhs is None else min(max_lhs, len(attrs))
    result: List[FD] = []
    for size in range(1, bound + 1):
        for lhs in itertools.combinations(attrs, size):
            closure = attribute_closure_linear(lhs, fd_list)
            rhs = tuple(a for a in attrs if a in closure)
            if nontrivial_only:
                rhs = tuple(a for a in rhs if a not in lhs)
            if rhs:
                result.append(FD(lhs, rhs))
    return result


def membership_equivalence_class(
    fds: Iterable[FDInput], attributes: AttrsInput
) -> Set[FrozenSet[str]]:
    """The distinct closures ``{closure(X) : X ⊆ attributes}``.

    A compact fingerprint of ``F``'s semantics over a universe; two FD sets
    are equivalent over the universe iff their fingerprints coincide (used
    as an independent oracle in tests).
    """
    attrs = parse_attrs(attributes)
    fd_list = [as_fd(f) for f in fds]
    closures: Set[FrozenSet[str]] = set()
    for size in range(0, len(attrs) + 1):
        for lhs in itertools.combinations(attrs, size):
            closures.add(attribute_closure_linear(lhs, fd_list))
    return closures
