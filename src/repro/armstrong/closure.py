"""Attribute closure — the workhorse of classical FD theory.

``closure(X, F)`` is the set of attributes functionally determined by ``X``
under ``F``; Armstrong completeness makes it the decision procedure for FD
implication (``F ⊨ X -> Y`` iff ``Y ⊆ closure(X, F)``), which Theorem 1
extends verbatim to relations with nulls under strong satisfiability.

Two implementations:

* :func:`attribute_closure` — the textbook fixpoint; ``O(|F|² · width)``
  worst case but trivially correct;
* :func:`attribute_closure_linear` — the Beeri–Bernstein counter algorithm,
  linear in the total size of ``F``; used by everything that runs inside
  benchmark loops.

Both are cross-checked against each other in the tests (and, via the logic
bridge, against exhaustive System-C inference).
"""

from __future__ import annotations

from collections import defaultdict, deque
from typing import Dict, FrozenSet, Iterable, List, Sequence, Set, Tuple

from ..core.attributes import AttrsInput, parse_attrs
from ..core.fd import FDInput, as_fd


def attribute_closure(
    attributes: AttrsInput, fds: Iterable[FDInput]
) -> FrozenSet[str]:
    """The closure of ``attributes`` under ``fds`` (naive fixpoint)."""
    fd_list = [as_fd(fd) for fd in fds]
    closure: Set[str] = set(parse_attrs(attributes))
    changed = True
    while changed:
        changed = False
        for fd in fd_list:
            if set(fd.lhs) <= closure and not set(fd.rhs) <= closure:
                closure.update(fd.rhs)
                changed = True
    return frozenset(closure)


def attribute_closure_linear(
    attributes: AttrsInput, fds: Iterable[FDInput]
) -> FrozenSet[str]:
    """Beeri–Bernstein linear-time closure.

    Each FD keeps a counter of left-hand attributes not yet in the closure;
    when a counter hits zero the FD "fires" and its right-hand side joins
    the work queue.  Every attribute enters the queue at most once and every
    FD decrements each of its LHS attributes at most once: linear in the
    total size of ``F``.
    """
    fd_list = [as_fd(fd) for fd in fds]
    missing: List[int] = []
    watchers: Dict[str, List[int]] = defaultdict(list)
    for index, fd in enumerate(fd_list):
        missing.append(len(fd.lhs))
        for attr in fd.lhs:
            watchers[attr].append(index)

    closure: Set[str] = set()
    queue: deque = deque()

    def add(attr: str) -> None:
        if attr not in closure:
            closure.add(attr)
            queue.append(attr)

    for attr in parse_attrs(attributes):
        add(attr)
    while queue:
        attr = queue.popleft()
        for index in watchers.get(attr, ()):
            missing[index] -= 1
            if missing[index] == 0:
                for out in fd_list[index].rhs:
                    add(out)
    return frozenset(closure)


def closure_trace(
    attributes: AttrsInput, fds: Iterable[FDInput]
) -> List[Tuple[FDInput, Tuple[str, ...]]]:
    """The firing order of the naive closure: ``[(fd, new_attrs), ...]``.

    Used to assemble explicit Armstrong derivations (each fired FD becomes
    a transitivity step) and by teaching-oriented examples.
    """
    fd_list = [as_fd(fd) for fd in fds]
    closure: Set[str] = set(parse_attrs(attributes))
    trace: List[Tuple[FDInput, Tuple[str, ...]]] = []
    changed = True
    while changed:
        changed = False
        for fd in fd_list:
            if set(fd.lhs) <= closure and not set(fd.rhs) <= closure:
                new = tuple(a for a in fd.rhs if a not in closure)
                closure.update(fd.rhs)
                trace.append((fd, new))
                changed = True
    return trace
