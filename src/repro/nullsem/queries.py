"""Queries over rows with nulls: least-extension vs Kleene evaluation.

Section 2's running example: on ``R(name, marital-status)`` with
``dom(marital-status) = {married, single}`` and the tuple ``("John", ⊥)``:

* ``Q``  = "Is John married?"              → ``lub{yes, no} = unknown``;
* ``Q'`` = "Is John married or single?"    → ``lub{yes, yes} = yes``.

A truth-functional (Kleene) evaluator answers *unknown* to both — it
cannot see that the disjunction exhausts the domain.  The least-extension
evaluator is exact but enumerates substitutions; the paper cites
[Vassiliou 79] for syntactic transformations that avoid the enumeration.
This module provides:

* a small predicate AST (:class:`Pred` constructors);
* :func:`evaluate_kleene` — linear, three-valued, *under-informative*;
* :func:`evaluate_least_extension` — exact, enumerates only the nulls the
  predicate actually references (the library's stand-in for the
  transformation: exponential only in the *relevant* nulls);
* :func:`select` — certain/possible selection over a relation.

Invariant (tested): wherever Kleene answers definitely, the least
extension agrees; the least extension is always at least as definite.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, FrozenSet, Iterator, List, Sequence, Tuple

from ..core.domain import Domain, effective_domain
from ..core.relation import Relation
from ..core.truth import FALSE, TRUE, UNKNOWN, TruthValue, and_, from_bool, lub, not_, or_
from ..core.tuples import Row
from ..core.values import is_null
from ..errors import DomainError


class Pred:
    """Base class for query predicates over a single row."""

    __slots__ = ()

    def __and__(self, other: "Pred") -> "Pred":
        return AndP((self, other))

    def __or__(self, other: "Pred") -> "Pred":
        return OrP((self, other))

    def __invert__(self) -> "Pred":
        return NotP(self)


@dataclass(frozen=True)
class Eq(Pred):
    """``attribute = constant``."""

    __slots__ = ("attribute", "constant")
    attribute: str
    constant: Any


@dataclass(frozen=True)
class In(Pred):
    """``attribute ∈ constants``."""

    __slots__ = ("attribute", "constants")
    attribute: str
    constants: Tuple[Any, ...]


@dataclass(frozen=True)
class AttrEq(Pred):
    """``attribute = attribute`` (within one row)."""

    __slots__ = ("first", "second")
    first: str
    second: str


@dataclass(frozen=True)
class NotP(Pred):
    __slots__ = ("operand",)
    operand: Pred


@dataclass(frozen=True)
class AndP(Pred):
    __slots__ = ("operands",)
    operands: Tuple[Pred, ...]


@dataclass(frozen=True)
class OrP(Pred):
    __slots__ = ("operands",)
    operands: Tuple[Pred, ...]


def referenced_attributes(pred: Pred) -> FrozenSet[str]:
    """The attributes a predicate reads."""
    if isinstance(pred, Eq):
        return frozenset((pred.attribute,))
    if isinstance(pred, In):
        return frozenset((pred.attribute,))
    if isinstance(pred, AttrEq):
        return frozenset((pred.first, pred.second))
    if isinstance(pred, NotP):
        return referenced_attributes(pred.operand)
    if isinstance(pred, (AndP, OrP)):
        out: FrozenSet[str] = frozenset()
        for op in pred.operands:
            out |= referenced_attributes(op)
        return out
    raise TypeError(f"not a predicate: {pred!r}")


def _evaluate_total(pred: Pred, row: Row) -> bool:
    """Two-valued evaluation on a row that is total on the referenced attrs."""
    if isinstance(pred, Eq):
        return row[pred.attribute] == pred.constant
    if isinstance(pred, In):
        return row[pred.attribute] in pred.constants
    if isinstance(pred, AttrEq):
        return row[pred.first] == row[pred.second]
    if isinstance(pred, NotP):
        return not _evaluate_total(pred.operand, row)
    if isinstance(pred, AndP):
        return all(_evaluate_total(op, row) for op in pred.operands)
    if isinstance(pred, OrP):
        return any(_evaluate_total(op, row) for op in pred.operands)
    raise TypeError(f"not a predicate: {pred!r}")


def evaluate_kleene(pred: Pred, row: Row) -> TruthValue:
    """Truth-functional evaluation: null comparisons are *unknown*.

    Linear in the predicate size; under-informative (see module docstring).
    """
    if isinstance(pred, Eq):
        value = row[pred.attribute]
        if is_null(value):
            return UNKNOWN
        return from_bool(value == pred.constant)
    if isinstance(pred, In):
        value = row[pred.attribute]
        if is_null(value):
            return UNKNOWN
        return from_bool(value in pred.constants)
    if isinstance(pred, AttrEq):
        first, second = row[pred.first], row[pred.second]
        if first is second and is_null(first):
            return TRUE  # the same unknown value equals itself
        if is_null(first) or is_null(second):
            return UNKNOWN
        return from_bool(first == second)
    if isinstance(pred, NotP):
        return not_(evaluate_kleene(pred.operand, row))
    if isinstance(pred, AndP):
        return and_(*(evaluate_kleene(op, row) for op in pred.operands))
    if isinstance(pred, OrP):
        return or_(*(evaluate_kleene(op, row) for op in pred.operands))
    raise TypeError(f"not a predicate: {pred!r}")


def _mentioned_constants(pred: Pred) -> List[Any]:
    """Every constant the predicate compares against, in syntax order."""
    if isinstance(pred, Eq):
        return [pred.constant]
    if isinstance(pred, In):
        return list(pred.constants)
    if isinstance(pred, AttrEq):
        return []
    if isinstance(pred, NotP):
        return _mentioned_constants(pred.operand)
    if isinstance(pred, (AndP, OrP)):
        out: List[Any] = []
        for op in pred.operands:
            out.extend(_mentioned_constants(op))
        return out
    raise TypeError(f"not a predicate: {pred!r}")


def _relevant_groundings(pred: Pred, row: Row) -> Iterator[Row]:
    """Groundings of the row restricted to the predicate's attributes.

    This is the "transformed" evaluation: nulls in unreferenced columns are
    never enumerated.  For unbounded domains, the candidate pool is exact
    by the equality-pattern argument: a one-row predicate only ever tests a
    cell's equality against *mentioned* constants, the row's own referenced
    constants, or other referenced cells — so the pool of those constants
    plus one shared fresh symbol per referenced null (plus one) realizes
    every distinguishable outcome, and no others.
    """
    refs = referenced_attributes(pred)
    null_attrs = [
        a for a in row.schema.attributes if a in refs and is_null(row[a])
    ]
    if not null_attrs:
        yield row
        return

    pool: List[Any] = []
    seen: set = set()
    for constant in _mentioned_constants(pred):
        if constant not in seen:
            seen.add(constant)
            pool.append(constant)
    for attr in refs:
        value = row[attr]
        if not is_null(value) and value not in seen:
            seen.add(value)
            pool.append(value)
    pool.extend(f"‡fresh:{i}" for i in range(len(null_attrs) + 1))

    # one choice per distinct null object; positions sharing a null
    # intersect their domains
    order: List[Any] = []
    allowed: dict = {}
    for attr in null_attrs:
        value = row[attr]
        declared = row.schema.domain(attr)
        candidates = list(declared) if declared.is_finite else list(pool)
        key = id(value)
        if key not in allowed:
            allowed[key] = candidates
            order.append(value)
        else:
            keep = set(candidates)
            allowed[key] = [v for v in allowed[key] if v in keep]
    for combo in itertools.product(*(allowed[id(n)] for n in order)):
        yield row.substitute(dict(zip(order, combo)))


def evaluate_least_extension(pred: Pred, row: Row) -> TruthValue:
    """Exact least-extension evaluation (the section 2 semantics).

    ``lub`` of the two-valued evaluations over all relevant groundings;
    exponential only in the number of *referenced* null cells.
    """
    outcomes: List[TruthValue] = []
    for grounded in _relevant_groundings(pred, row):
        outcomes.append(from_bool(_evaluate_total(pred, grounded)))
        if TRUE in outcomes and FALSE in outcomes:
            return UNKNOWN
    return lub(outcomes)


def select(
    relation: Relation, pred: Pred, mode: str = "certain"
) -> Relation:
    """Selection over an instance with nulls.

    ``mode="certain"`` keeps rows whose least-extension value is *true*
    (they satisfy the predicate under every completion); ``mode="possible"``
    keeps rows whose value is not *false* (some completion satisfies it) —
    the same strong/weak duality as FD satisfiability.
    """
    if mode not in ("certain", "possible"):
        raise ValueError(f"unknown selection mode {mode!r}")
    kept = []
    for row in relation.rows:
        value = evaluate_least_extension(pred, row)
        if mode == "certain" and value is TRUE:
            kept.append(row)
        elif mode == "possible" and value is not FALSE:
            kept.append(row)
    return Relation(relation.schema, kept)
