"""The approximation lattice of section 2.

"The introduction of the null in a database domain makes the domain a
lattice with an approximation ordering.  Null carries less information than
all other domain values."  The value-level order and join live in
:mod:`repro.core.values`; this module lifts them to rows and exposes the
pieces the least-extension machinery needs.

Structure (per domain): ``null`` at the bottom, the domain constants as an
antichain above it, and — once section 6 adds it — ``NOTHING`` as the
over-defined top.  The truth-value variant puts ``unknown`` above
``true``/``false`` (that is the order in which ``lub{yes, no} = unknown``).
"""

from __future__ import annotations

from typing import Any, Iterable, Optional

from ..core.schema import RelationSchema
from ..core.tuples import Row
from ..core.values import NOTHING, approximates, is_null, value_lub
from ..errors import SchemaError


def row_approximates(lower: Row, upper: Row) -> bool:
    """Pointwise approximation order on rows (``t ⊑ t'``)."""
    return lower.approximates(upper)


def row_lub(first: Row, second: Row) -> Row:
    """Pointwise join of two rows over the same scheme.

    Conflicting constants join to ``NOTHING`` — the row-level counterpart
    of the extended NS-rule.
    """
    if first.schema.attributes != second.schema.attributes:
        raise SchemaError("row join requires identical schemes")
    return Row(
        first.schema,
        [value_lub(a, b) for a, b in zip(first.values, second.values)],
    )


def rows_lub(rows: Iterable[Row]) -> Optional[Row]:
    """Join of a collection of rows (``None`` for an empty collection)."""
    result: Optional[Row] = None
    for row in rows:
        result = row if result is None else row_lub(result, row)
    return result


def is_consistent_pair(first: Row, second: Row) -> bool:
    """Do the rows have an upper bound below ``NOTHING``?

    True when no attribute carries two distinct constants — i.e. the two
    rows could describe the same real-world tuple.
    """
    return all(
        value is not NOTHING for value in row_lub(first, second).values
    )


def information_content(row: Row) -> int:
    """Number of non-null cells — the row's height in the product order.

    The NS-rules only ever increase this (a substitution grounds a null);
    it is the measure behind the finiteness argument of section 6.
    """
    return sum(0 if is_null(value) else 1 for value in row.values)
