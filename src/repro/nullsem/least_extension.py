"""Least extensions of functions (section 2's uniform rule).

"Any function, which is evaluated on the null, will take a particular value
in its range iff, for every non-null in the domain, the function evaluates
to the same value. ... If all evaluations have the same result, it means
that our incomplete knowledge is not essential for this function."

:func:`least_extension` wraps an ordinary (null-free) Python function so
that it accepts nulls in any argument: the wrapper substitutes every
combination of domain values for the null arguments, evaluates, and joins
the results —

* for truth-valued functions the join is
  :func:`repro.core.truth.lub` (``lub{yes, no} = unknown``);
* for value-valued functions: all-equal results collapse to that value,
  anything else returns a fresh null ("the best possible approximation").

This is exactly the semantics the FD interpretation of section 4
instantiates with ``f(t, r)``; the module exists so that examples and
benches can *show* the shared mechanism (and its cost — the paper notes
the rule "has an unacceptable complexity for practical considerations",
motivating the transformed evaluators of :mod:`repro.nullsem.queries`).
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence

from ..core.domain import Domain
from ..core.truth import TruthValue, lub
from ..core.values import is_null, null
from ..errors import DomainError


def substitutions(
    args: Sequence[Any], domains: Sequence[Domain]
) -> Iterable[tuple]:
    """All groundings of ``args``: null positions range over their domains.

    A null *object* appearing in several positions is substituted
    consistently (its choice set is the intersection of the positions'
    domains).
    """
    if len(args) != len(domains):
        raise DomainError("one domain per argument is required")
    order: List[Any] = []
    allowed: Dict[int, List[Any]] = {}
    for value, domain in zip(args, domains):
        if not is_null(value):
            continue
        key = id(value)
        if key not in allowed:
            allowed[key] = list(domain)
            order.append(value)
        else:
            keep = set(domain)
            allowed[key] = [v for v in allowed[key] if v in keep]
    if not order:
        yield tuple(args)
        return
    for combo in itertools.product(*(allowed[id(n)] for n in order)):
        binding = {id(n): v for n, v in zip(order, combo)}
        yield tuple(
            binding[id(v)] if is_null(v) else v for v in args
        )


def least_extension_truth(
    func: Callable[..., TruthValue], domains: Sequence[Domain]
) -> Callable[..., TruthValue]:
    """Least extension of a truth-valued function (a *query*)."""

    def extended(*args: Any) -> TruthValue:
        return lub(func(*grounded) for grounded in substitutions(args, domains))

    extended.__name__ = f"least_extension({getattr(func, '__name__', 'f')})"
    return extended


def least_extension_value(
    func: Callable[..., Any], domains: Sequence[Domain]
) -> Callable[..., Any]:
    """Least extension of a value-valued function.

    All groundings agree → that value; otherwise a fresh null (the best
    approximation the lattice offers below the disagreeing results).
    """

    def extended(*args: Any) -> Any:
        result: Any = None
        first = True
        for grounded in substitutions(args, domains):
            value = func(*grounded)
            if first:
                result, first = value, False
            elif value != result:
                return null()
        if first:
            raise DomainError("no groundings: some null has an empty domain")
        return result

    extended.__name__ = f"least_extension({getattr(func, '__name__', 'f')})"
    return extended
