"""Least-extension semantics for functions and queries (paper section 2)."""

from .lattice import (
    information_content,
    is_consistent_pair,
    row_approximates,
    row_lub,
    rows_lub,
)
from .least_extension import (
    least_extension_truth,
    least_extension_value,
    substitutions,
)
from .queries import (
    AndP,
    AttrEq,
    Eq,
    In,
    NotP,
    OrP,
    Pred,
    evaluate_kleene,
    evaluate_least_extension,
    referenced_attributes,
    select,
)

__all__ = [
    "AndP",
    "AttrEq",
    "Eq",
    "In",
    "NotP",
    "OrP",
    "Pred",
    "evaluate_kleene",
    "evaluate_least_extension",
    "information_content",
    "is_consistent_pair",
    "least_extension_truth",
    "least_extension_value",
    "referenced_attributes",
    "row_approximates",
    "row_lub",
    "rows_lub",
    "select",
    "substitutions",
]
