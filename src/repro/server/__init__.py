"""``repro.server`` — a concurrent front end for durable chase relations.

Multiplexes many clients onto one writer task per relation:

* **group commit** — op records from a burst of concurrent mutations are
  batched into a single WAL append + fsync
  (:class:`~repro.db.log.GroupCommitter`); each client is acked only
  after its batch is durable, so N clients share one sync instead of
  paying one each;
* **snapshot-isolated reads** — ``result``/``check``/``rows`` readers
  run against a consistent cut (:class:`~repro.chase.session.ReadLease`)
  and never block the writer: a cut the writer has outrun is re-chased
  privately, off the event loop;
* **auto-checkpoints** — by WAL-tail size or wall clock, drained and
  serialized with the op stream.

Start from the CLI (``repro serve <path>``), over TCP
(:meth:`ReproServer.listen` + :class:`~repro.server.protocol.Client`),
or fully in-process (``await server.handle({...})``).  See the README's
"Serving" section and ``examples/server_tour.py``.
"""

from .app import ReproServer
from .protocol import Client, ServerError
from .writer import RelationWriter

__all__ = ["Client", "ReproServer", "RelationWriter", "ServerError"]
