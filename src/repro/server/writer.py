"""Per-relation writer task: one mutation stream, group-committed.

Every mutation of a served relation funnels through one
:class:`RelationWriter` on the event loop, which gives the serving layer
its ordering and durability story in one place:

* arrival order is apply order is journal order (``seq``) is ack order
  *within a batch's resolution* — there is exactly one mutator, so the
  session's single-caller invariants hold unmodified under concurrency;
* the relation's :attr:`~repro.db.database.ManagedRelation.journal_sink`
  is repointed at a :class:`~repro.db.log.GroupCommitter` stage while the
  writer runs, so a burst of client ops shares one WAL append + fsync;
* each client's future resolves only after the batch holding its op
  record is durable (validation errors resolve immediately — nothing was
  journalled, nothing applied);
* auto-checkpoints fire between bursts, by WAL-tail size
  (``checkpoint_wal_ops``) or wall clock (``checkpoint_interval_s``),
  after draining the committer so log truncation can never interleave
  with an in-flight batch append.

If a batch append fails, the committer poisons itself and the writer
refuses further ops: the in-memory session is ahead of a log that cannot
be extended contiguously, so the only honest continuation is a restart
(recovery then serves exactly the durable prefix).
"""

from __future__ import annotations

import asyncio
import time
from typing import Any, Callable, List, Optional, Tuple

from ..chase.session import ReadLease
from ..db.database import ManagedRelation
from ..db.log import GroupCommitter
from ..errors import DatabaseError

#: queue sentinel asking the writer to stop after the current burst
_STOP = object()

#: one writer-queue item: an op closure (or a control marker — ``_STOP``,
#: ``_Checkpoint``, a ``_Batch``) plus the future that acks it
_QueueItem = Tuple[Any, Optional["asyncio.Future[Any]"]]


class _Checkpoint:
    """Queue marker for an explicit, writer-serialized checkpoint."""


class _Batch:
    """Queue marker bundling several op closures into ONE queue item.

    The writer applies the bundle contiguously — no op from another
    client can interleave — which is what makes the batch linter's
    admission-time index bounds exact.
    """

    __slots__ = ("apply_fns",)

    def __init__(self, apply_fns: List[Callable[[], Any]]) -> None:
        self.apply_fns = apply_fns


class RelationWriter:
    """The single mutator of one served relation."""

    def __init__(
        self,
        relation: ManagedRelation,
        window_s: float = 0.0,
        max_batch: int = 512,
        checkpoint_wal_ops: Optional[int] = None,
        checkpoint_interval_s: Optional[float] = None,
        on_commit: Optional[Callable[[list], None]] = None,
    ) -> None:
        self.relation = relation
        self.committer = GroupCommitter(
            relation.wal, window_s=window_s, max_batch=max_batch, on_commit=on_commit
        )
        self.checkpoint_wal_ops = checkpoint_wal_ops
        self.checkpoint_interval_s = checkpoint_interval_s
        self.ops_applied = 0
        self.auto_checkpoints = 0
        self._queue: "asyncio.Queue[_QueueItem]" = asyncio.Queue()
        self._task: Optional["asyncio.Task[None]"] = None
        self._last_staged: Optional["asyncio.Future[Any]"] = None
        self._last_checkpoint = time.monotonic()

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> None:
        await self.committer.start()
        self.relation.journal_sink = self._stage
        self._task = asyncio.get_running_loop().create_task(self._run())

    async def stop(self) -> None:
        """Process everything queued, make it durable, stop the task."""
        if self._task is None:
            return
        await self._queue.put((_STOP, None))
        await self._task
        self._task = None

    # -- submission --------------------------------------------------------

    async def submit(self, apply_fn: Callable[[], Any]) -> Any:
        """Run one mutation closure on the writer; returns its value
        after the op record it journalled (if any) is durable."""
        future = asyncio.get_running_loop().create_future()
        await self._queue.put((apply_fn, future))
        return await future

    async def submit_many(self, apply_fns: List[Callable[[], Any]]) -> List[dict]:
        """Run several mutation closures contiguously (one queue item).

        Returns one outcome object per closure (``{"ok": True, ...}``
        with the op's response fields, or ``{"ok": False, "error": ...}``),
        resolved only after the last record the batch journalled is
        durable — the committer acks staged records in order, so the last
        record's durability covers the whole batch.
        """
        future = asyncio.get_running_loop().create_future()
        await self._queue.put((_Batch(list(apply_fns)), future))
        return await future

    async def checkpoint(self) -> Any:
        """A checkpoint, serialized into the op stream like any op."""
        future = asyncio.get_running_loop().create_future()
        await self._queue.put((_Checkpoint, future))
        return await future

    def lease(self) -> Tuple[ReadLease, int]:
        """A consistent-cut read lease plus the seq it covers.

        Callers on the event loop only ever observe op boundaries (the
        writer's apply loop never awaits mid-op), so the cut is always a
        serial prefix of the op stream.
        """
        return self.relation.session.lease(), self.relation.seq

    def pending(self) -> int:
        """Queued ops not yet applied (the read path's busy signal)."""
        return self._queue.qsize()

    def stats(self) -> dict:
        merged = self.committer.stats()
        merged.update(
            writer_ops=self.ops_applied,
            auto_checkpoints=self.auto_checkpoints,
            queue_depth=self._queue.qsize(),
        )
        return merged

    # -- internals ---------------------------------------------------------

    def _stage(self, payload: dict) -> None:
        """The relation's journal sink while the writer runs."""
        self._last_staged = self.committer.stage(payload)

    def _apply(
        self, apply_fn: Callable[[], Any], future: "asyncio.Future[Any]"
    ) -> None:
        """Apply one op; wire its ack to its record's durability."""
        if future.done():  # client went away before the op ran: skip it
            return
        if self.committer.failed is not None:
            self._refuse(future)
            return
        self._last_staged = None
        try:
            value = apply_fn()
        except Exception as error:
            # validation failure: _emit fires before any mutation, and a
            # failed stage aborts the op — either way nothing applied, so
            # the error can be acked without waiting on durability
            if not future.done():
                future.set_exception(error)
            return
        staged = self._last_staged
        self.ops_applied += 1
        if staged is None:
            # read-only or no-record op: nothing to make durable
            if not future.done():
                future.set_result(value)
            return

        def _ack(record_future: "asyncio.Future[Any]") -> None:
            if future.done():
                return
            if record_future.cancelled():
                future.cancel()
                return
            error = record_future.exception()
            if error is not None:
                future.set_exception(error)
            else:
                future.set_result(value)

        staged.add_done_callback(_ack)

    def _apply_batch(
        self, batch: _Batch, future: "asyncio.Future[Any]"
    ) -> None:
        """Apply a bundle contiguously; one ack covers every outcome.

        A failing op is recorded in its outcome slot and the bundle
        continues — per-op atomicity, exactly as if the ops had been
        submitted singly, just without interleaving.
        """
        if future.done():
            return
        if self.committer.failed is not None:
            self._refuse(future)
            return
        outcomes: List[dict] = []
        staged: Optional["asyncio.Future[Any]"] = None
        for apply_fn in batch.apply_fns:
            self._last_staged = None
            try:
                value = apply_fn()
            except Exception as error:
                outcomes.append(
                    {"ok": False, "error": f"{type(error).__name__}: {error}"}
                )
                continue
            self.ops_applied += 1
            if self._last_staged is not None:
                staged = self._last_staged
            outcomes.append({"ok": True, **(value or {})})
        if staged is None:
            # nothing journalled (every op failed validation, or the
            # bundle was read-only): ack immediately
            if not future.done():
                future.set_result(outcomes)
            return

        def _ack(record_future: "asyncio.Future[Any]") -> None:
            if future.done():
                return
            if record_future.cancelled():
                future.cancel()
                return
            error = record_future.exception()
            if error is not None:
                future.set_exception(error)
            else:
                future.set_result(outcomes)

        staged.add_done_callback(_ack)

    def _refuse(self, future: "asyncio.Future[Any]") -> None:
        if not future.done():
            future.set_exception(
                DatabaseError(
                    "writer stopped: a WAL batch append failed earlier "
                    f"({self.committer.failed}); restart the server to "
                    "recover the durable prefix"
                )
            )

    def _checkpoint_timeout(self) -> Optional[float]:
        if self.checkpoint_interval_s is None:
            return None
        elapsed = time.monotonic() - self._last_checkpoint
        return max(0.05, self.checkpoint_interval_s - elapsed)

    async def _maybe_checkpoint(self, clock_due: bool = False) -> None:
        relation = self.relation
        wal_ops = relation.seq - relation.checkpoint_seq
        if wal_ops <= 0:
            self._last_checkpoint = time.monotonic()
            return
        due = clock_due and self.checkpoint_interval_s is not None and (
            time.monotonic() - self._last_checkpoint >= self.checkpoint_interval_s
        )
        if not due and self.checkpoint_wal_ops is not None:
            due = wal_ops >= self.checkpoint_wal_ops
        if not due or relation.outstanding_snapshots:
            # an outstanding snapshot blocks checkpointing (by design);
            # retry once it is rolled back or discarded
            return
        if self.committer.failed is not None:
            return
        await self.committer.drain()
        self.relation.checkpoint()
        self.auto_checkpoints += 1
        self._last_checkpoint = time.monotonic()

    async def _checkpoint_now(self, future: "asyncio.Future[Any]") -> None:
        try:
            await self.committer.drain()
            absorbed = self.relation.checkpoint()
        except Exception as error:
            if not future.done():
                future.set_exception(error)
            return
        self._last_checkpoint = time.monotonic()
        if not future.done():
            future.set_result(absorbed)

    async def _run(self) -> None:
        queue = self._queue
        stopping = False
        while not stopping:
            timeout = self._checkpoint_timeout()
            try:
                if timeout is None:
                    first = await queue.get()
                else:
                    first = await asyncio.wait_for(queue.get(), timeout)
            except asyncio.TimeoutError:
                await self._maybe_checkpoint(clock_due=True)
                continue
            burst = [first]
            while True:
                try:
                    burst.append(queue.get_nowait())
                except asyncio.QueueEmpty:
                    break
            for apply_fn, future in burst:
                if apply_fn is _STOP:
                    stopping = True
                elif apply_fn is _Checkpoint:
                    await self._checkpoint_now(future)
                elif isinstance(apply_fn, _Batch):
                    self._apply_batch(apply_fn, future)
                else:
                    self._apply(apply_fn, future)
            await self._maybe_checkpoint()
        try:
            await self.committer.drain()
        except DatabaseError:
            pass  # poisoned: every affected future already carries the error
        await self.committer.close()
        self.relation.journal_sink = self.relation.wal.append
