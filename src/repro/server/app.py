"""``ReproServer``: many clients, one writer per relation.

One process, one event loop::

    clients ──▶ protocol (JSON lines) ──▶ ReproServer.handle
       mutations ─▶ RelationWriter queue ─▶ the relation's session
                        └─ op records ─▶ GroupCommitter ─▶ one append+fsync per burst
       reads ─▶ ReadLease (consistent cut) ─▶ live answer, or a detached
                chase in an executor thread when the writer has moved on

The server opens its database **exclusively** (the directory lock is
held for the whole run): a served directory has exactly one mutator
process, and every other access goes through the protocol.

Durability contract, end to end: a mutation response with ``ok: true``
means the op's record is on disk (synced per the ``sync`` mode) — a
crash at any instant recovers a state containing every acked op and no
half-applied batch (see ``tests/server/test_group_commit_crash.py``).

Read contract: responses carry ``as_of`` — the journal seq of the
consistent cut they were computed against, always an op boundary, so
every read equals the state after some serial prefix of the acked op
stream.  Readers never block the writer: a lease outlived by the writer
re-chases its frozen rows in an executor thread, off the loop.

In-process use (no sockets) is first-class: construct, ``await
start()``, then ``await handle({...})`` — the concurrency and crash
suites drive the server this way.
"""

from __future__ import annotations

import asyncio
from pathlib import Path
from typing import Any, Callable, Dict, Optional, Union

from ..api import TAG_CERTAIN, WIRE_VERSION
from ..core.values import is_null
from ..db.database import Database
from ..db.log import SYNC_FSYNC
from ..errors import ReproError
from ..query import parse_query, relation_names
from ..query.evaluate import Evaluator
from . import protocol
from .writer import RelationWriter


def _ok(request_id: Any, **fields: Any) -> dict:
    return {"id": request_id, "ok": True, **fields}


def _err(request_id: Any, message: str) -> dict:
    return {"id": request_id, "ok": False, "error": message}


class ReproServer:
    """The serving front end over one :class:`~repro.db.Database`."""

    def __init__(
        self,
        path: Union[str, Path],
        sync: str = SYNC_FSYNC,
        create: bool = False,
        workers: Optional[int] = None,
        window_s: float = 0.0,
        max_batch: int = 512,
        checkpoint_wal_ops: Optional[int] = None,
        checkpoint_interval_s: Optional[float] = None,
        on_commit: Optional[Callable[[list], None]] = None,
    ) -> None:
        self.path = Path(path)
        self.sync = sync
        self.create = create
        self.workers = workers
        self.window_s = window_s
        self.max_batch = max_batch
        self.checkpoint_wal_ops = checkpoint_wal_ops
        self.checkpoint_interval_s = checkpoint_interval_s
        self.on_commit = on_commit
        self.db: Optional[Database] = None
        self._writers: Dict[str, RelationWriter] = {}
        self._catalog_lock: Optional["asyncio.Lock"] = None
        self._tcp: Optional["asyncio.AbstractServer"] = None

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> None:
        """Open (and recover) the database exclusively; start writers."""
        self.db = Database.open(
            self.path,
            sync=self.sync,
            create=self.create,
            workers=self.workers,
            exclusive=True,
        )
        self._catalog_lock = asyncio.Lock()
        for relation in self.db:
            await self._start_writer(relation.name)

    async def stop(self) -> None:
        """Drain every writer (queued ops apply and become durable),
        close the TCP listener and the database."""
        if self._tcp is not None:
            self._tcp.close()
            await self._tcp.wait_closed()
            self._tcp = None
        for writer in self._writers.values():
            await writer.stop()
        self._writers.clear()
        if self.db is not None:
            self.db.close()
            self.db = None

    async def listen(self, host: str = "127.0.0.1", port: int = 0) -> tuple:
        """Start the TCP front end; returns the bound ``(host, port)``."""
        self._tcp = await protocol.run_tcp(self, host, port)
        bound = self._tcp.sockets[0].getsockname()
        return bound[0], bound[1]

    def _database(self) -> Database:
        """The open database, or a refusal — narrows ``Optional`` for
        every verb handler that runs only while the server is up."""
        if self.db is None:
            raise ReproError("server is not running")
        return self.db

    async def _start_writer(self, name: str) -> RelationWriter:
        writer = RelationWriter(
            self._database().relation(name),
            window_s=self.window_s,
            max_batch=self.max_batch,
            checkpoint_wal_ops=self.checkpoint_wal_ops,
            checkpoint_interval_s=self.checkpoint_interval_s,
            on_commit=self.on_commit,
        )
        await writer.start()
        self._writers[name] = writer
        return writer

    # -- dispatch ----------------------------------------------------------

    async def handle(self, request: Any) -> dict:
        """Serve one request object; always returns a response object."""
        request_id = request.get("id") if isinstance(request, dict) else None
        try:
            return await self._dispatch(request, request_id)
        except asyncio.CancelledError:
            raise
        except Exception as error:
            return _err(request_id, f"{type(error).__name__}: {error}")

    async def _dispatch(self, request: Any, request_id: Any) -> dict:
        db = self._database()
        if not isinstance(request, dict):
            raise ReproError("request must be a JSON object")
        verb = request.get("do")
        if verb == "ping":
            return _ok(request_id, pong=True)
        if verb == "relations":
            return _ok(request_id, relations=db.names())
        if verb == "create":
            return await self._create(request, request_id)
        if verb == protocol.QUERY_VERB:
            # database-scoped: may lease several relations at once
            return await self._query(request, request_id)
        name = request.get("rel")
        if not isinstance(name, str):
            raise ReproError(f"verb {verb!r} needs a relation name in 'rel'")
        relation = db.relation(name)
        writer = self._writers[name]
        if verb in protocol.READ_VERBS:
            return await self._read(relation, writer, verb, request, request_id)
        if verb == "checkpoint":
            absorbed = await writer.checkpoint()
            return _ok(request_id, absorbed=absorbed, seq=relation.seq)
        if verb == "batch":
            return await self._batch(relation, writer, request, request_id)
        if verb in protocol.MUTATION_VERBS:
            apply_fn = protocol.mutation(relation, verb, request)
            fields = await writer.submit(apply_fn)
            return _ok(request_id, **fields)
        raise ReproError(f"unknown verb {verb!r}")

    async def _batch(
        self, relation, writer: RelationWriter, request: dict, request_id: Any
    ) -> dict:
        """Lint-gated contiguous application of several mutation ops.

        The static pre-pass (:func:`protocol.lint_batch`) runs on the
        event loop against the relation's current rows — exact, because
        the writer applies an admitted batch as one queue item, so no op
        can interleave and move the baseline.  A batch with any
        error-severity finding is refused *here*: nothing is enqueued, no
        group-commit slot is taken, no WAL byte is written.  Warnings
        (e.g. a provable FD conflict, which executes but poisons) ride
        along in the response either way.
        """
        ops = request.get("ops")
        if not isinstance(ops, list) or not ops:
            raise ReproError("'batch' needs 'ops' (a non-empty array of ops)")
        diagnostics = protocol.lint_batch(relation, ops)
        payloads = [diagnostic.to_payload() for diagnostic in diagnostics]
        if any(d.severity == "error" for d in diagnostics):
            errors = sum(1 for d in diagnostics if d.severity == "error")
            return {
                "id": request_id,
                "ok": False,
                "error": f"batch refused by lint: {errors} error(s)",
                "diagnostics": payloads,
            }
        apply_fns = [
            protocol.mutation(relation, op.get("do"), op) for op in ops
        ]
        outcomes = await writer.submit_many(apply_fns)
        fields: Dict[str, Any] = {"results": outcomes}
        if payloads:
            fields["diagnostics"] = payloads  # warnings only, by now
        return _ok(request_id, **fields)

    async def _create(self, request: dict, request_id: Any) -> dict:
        name = request.get("name")
        if not isinstance(name, str):
            raise ReproError("'create' needs a relation 'name'")
        attrs = request.get("attrs")
        if isinstance(attrs, str):
            attrs = attrs.split()
        if not isinstance(attrs, list) or not attrs:
            raise ReproError("'create' needs 'attrs' (list or space-joined string)")
        fds = request.get("fds", [])
        if isinstance(fds, str):
            fds = [clause for clause in fds.split(";") if clause.strip()]
        if self._catalog_lock is None:
            raise ReproError("server is not running")
        async with self._catalog_lock:
            self._database().create(name, attrs, fds)
            await self._start_writer(name)
        return _ok(request_id, created=name, attrs=list(attrs))

    # -- the read path -----------------------------------------------------

    async def _read(
        self, relation, writer: RelationWriter, verb, request: dict, request_id
    ) -> dict:
        if verb == "stats":
            # counters, not relation state: no cut needed
            merged = relation.stats()
            merged.update(writer.stats())
            return _ok(request_id, stats=merged)
        lease, as_of = writer.lease()
        if verb == "rows":
            # the raw rows are frozen in the lease itself: no chase at all
            rows = [
                [relation.encode_value(value) for value in row.values]
                for row in lease.rows
            ]
            return _ok(
                request_id,
                v=WIRE_VERSION,
                tag=TAG_CERTAIN,
                attrs=list(relation.session.schema.attributes),
                rows=rows,
                as_of=as_of,
                live=True,
            )
        # answer from the live session only while it provably *is* the
        # cut AND the writer is idle: a live answer runs on the loop, so
        # computing it with mutations queued would stall the writer.
        # ``"isolated": true`` forces the detached path regardless.
        isolated = bool(request.get("isolated")) or writer.pending() > 0
        if not isolated and lease.fresh:
            return self._answer(relation, lease, verb, request, request_id, as_of, True)
        # chase the frozen cut off the loop (the writer keeps running;
        # Python time-slices the threads), then come back to encode —
        # codec registries belong to the loop, the chase does not
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(None, lease.instance, True)
        return self._answer(relation, lease, verb, request, request_id, as_of, False)

    def _answer(
        self, relation, lease, verb, request: dict, request_id, as_of: int, live: bool
    ) -> dict:
        """One read verb's response: the unified answer schema
        (``v``/``tag``/``attrs``/``rows``/``meta`` — :mod:`repro.api`)
        with the legacy top-level fields riding alongside, so pre-v1
        clients keep working unchanged."""
        detached = not live
        if verb == "result":
            answer = (
                lease.result(detached=detached).at(as_of, live=live).answer()
            )
            payload = answer.to_payload(encode=relation.encode_value)
            return _ok(
                request_id,
                has_nothing=answer.meta["has_nothing"],  # legacy field
                **payload,
            )
        if verb == "check":
            fds = request.get("fds")
            if isinstance(fds, str):
                fds = [clause for clause in fds.split(";") if clause.strip()]
            convention = request.get("convention", "weak")
            outcome = lease.check(fds=fds, convention=convention, detached=detached)
            answer = outcome.at(as_of, live=live).answer()
            fields: Dict[str, Any] = answer.to_payload()
            fields["satisfied"] = bool(outcome)  # legacy fields
            fields["convention"] = convention
            witness = outcome.witness_payload()
            if witness is not None:
                fields["witness"] = witness
            return _ok(request_id, **fields)
        if verb == "has_nothing":
            has_nothing = lease.instance(detached).has_nothing
            return _ok(
                request_id,
                v=WIRE_VERSION,
                tag=TAG_CERTAIN,
                attrs=[],
                rows=[],
                meta={"has_nothing": has_nothing},
                has_nothing=has_nothing,  # legacy field
                as_of=as_of,
                live=live,
            )
        if verb == "explain":
            narration = lease.explain(detached=detached)
            return _ok(
                request_id,
                v=WIRE_VERSION,
                tag=TAG_CERTAIN,
                attrs=[],
                rows=[],
                meta={"explain": narration},
                explain=narration,  # legacy field
                as_of=as_of,
                live=live,
            )
        raise ReproError(f"unknown read verb {verb!r}")  # pragma: no cover

    # -- the query verb ----------------------------------------------------

    async def _query(self, request: dict, request_id: Any) -> dict:
        """Evaluate a relational-algebra query at one consistent cut.

        Every relation the query scans is leased *before* anything is
        evaluated, so the answer reflects one serial prefix per relation
        (``as_of`` maps each scanned relation to its cut seq; a scalar
        when only one relation is scanned).  The read contract matches
        the single-relation path: a live answer only while every writer
        is provably idle at its cut; otherwise the frozen rows are
        re-chased and evaluated in an executor thread — however long the
        grounding enumeration takes, the writers never wait on it.

        The plan linter runs before any lease is taken: refusal-grade
        findings (least-mode grounding blow-up, statically unsatisfiable
        tree) reject the request outright, warnings ride along in the
        success payload, and ``explain: true`` returns the optimized
        plan text — lease-free — instead of evaluating.
        """
        from ..analysis import lint_query_request  # local: keeps startup light
        from ..query.optimize import relation_stats

        db = self._database()
        catalog = {
            name: db.relation(name).session.schema for name in db.names()
        }
        # instance stats and FDs come from the maintained fixpoint's raw
        # rows — no lease, no chase; the plan linter runs *before any
        # lease is taken*, so a doomed read (least-mode grounding blow-up,
        # statically unsatisfiable tree) is refused without ever holding
        # up group commit
        stats = {
            name: relation_stats(db.relation(name).raw_relation())
            for name in db.names()
        }
        fds = {
            name: tuple(db.relation(name).session.fds)
            for name in db.names()
        }
        diagnostics = lint_query_request(
            catalog, request, stats=stats, fds=fds
        )
        if any(d.severity == "error" for d in diagnostics):
            return {
                "id": request_id,
                "ok": False,
                "error": f"query refused by lint: "
                f"{sum(1 for d in diagnostics if d.severity == 'error')} "
                "error(s)",
                "diagnostics": [d.to_payload() for d in diagnostics],
            }
        text = request["q"]
        mode = request.get("mode", "least")
        node = parse_query(text)
        if request.get("explain"):
            # plan-only: answered from the raw instance, lease-free
            env = {
                name: db.relation(name).raw_relation() for name in db.names()
            }
            plan_text = Evaluator(env, fds=fds).explain(node, mode=mode)
            payload: Dict[str, Any] = {"plan": plan_text}
            if diagnostics:
                payload["diagnostics"] = [d.to_payload() for d in diagnostics]
            return _ok(request_id, **payload)
        names = relation_names(node)
        known = [name for name in names if name in db]
        leases = {}
        cuts: Dict[str, int] = {}
        for name in known:
            lease, seq = self._writers[name].lease()
            leases[name] = lease
            cuts[name] = seq
        as_of: Any = (
            cuts[known[0]] if len(names) == 1 and known else dict(cuts)
        )
        isolated = bool(request.get("isolated")) or any(
            self._writers[name].pending() > 0 for name in known
        )
        live = (
            not isolated
            and all(lease.fresh for lease in leases.values())
        )

        def materialize_and_evaluate():
            env = {
                name: lease.result(detached=not live).relation
                for name, lease in leases.items()
            }
            evaluator = Evaluator(env, fds=fds)
            return evaluator.run(node, mode=mode, as_of=as_of, live=live)

        if live:
            result = materialize_and_evaluate()
        else:
            loop = asyncio.get_running_loop()
            result = await loop.run_in_executor(None, materialize_and_evaluate)
        # back on the loop: enrich provenance with durable null ids and
        # encode each null with the codec of the relation it came from
        provenance: Dict[str, dict] = {}
        for answer in (result.certain, result.maybe):
            provenance.update(answer.provenance)
        null_codecs: Dict[str, Any] = {}
        for answer in (result.certain, result.maybe):
            for row in answer.rows:
                for value in row:
                    if not is_null(value):
                        continue
                    record = provenance.get(value.label)
                    origin = record.get("relation") if record else None
                    if origin is None:
                        continue
                    token = db.relation(origin).encode_value(value)
                    if isinstance(token, dict) and "n" in token:
                        record["id"] = token["n"]
                        null_codecs[value.label] = token

        def encode(value: Any) -> Any:
            if is_null(value):
                return null_codecs.get(value.label, {"n": value.label})
            return value

        payload = result.to_payload(encode)
        if diagnostics:
            # warning-grade findings ride along with the answer
            payload["diagnostics"] = [d.to_payload() for d in diagnostics]
        return _ok(request_id, **payload)
