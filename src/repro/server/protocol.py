"""The server's wire vocabulary: JSON lines, codec-shaped cells.

One request per line, one JSON object per request::

    {"id": 7, "do": "insert", "rel": "people", "row": ["Ada", {"n": null}, "NYC"]}
    {"id": 7, "ok": true, "seq": 42, "index": 3}

Cells use the relation codec's token forms (:mod:`repro.core.codec`):
plain scalars are constants, ``{"v": ...}`` wraps a literal (escaping),
``{"n": "x0"}`` names a shared null *within the relation's scope* (send
the same name again to mean the same unknown), ``{"!": true}`` is the
NOTHING marker.  One extension over the log format: ``{"n": null}``
asks the server to mint a fresh null — clients cannot know the
relation's canonical null counter, so fresh unknowns are server-named;
the ack's decoded row is the only place the chosen name appears.

Verbs:

=============  =======================================================
mutations      ``insert`` ``delete`` ``update`` ``replace`` ``fill``
               ``reset`` ``adopt`` ``snapshot`` ``rollback``
               ``discard`` — routed through the relation's writer;
               acked (with the op's ``seq``) once durable
reads          ``rows`` ``result`` ``check`` ``has_nothing``
               ``explain`` ``stats`` — answered from a consistent-cut
               read lease; the response carries ``as_of`` (the seq the
               cut covers) and ``live`` (False when the answer came
               from a detached snapshot chase)
admin          ``create`` ``relations`` ``checkpoint`` ``ping``
=============  =======================================================

Responses are ``{"id", "ok": true, ...}`` or ``{"id", "ok": false,
"error": "..."}``; a request the server cannot even parse is answered
with ``id: null``.  Responses may arrive out of order (reads overtake
group-committed writes); clients match on ``id``.
"""

from __future__ import annotations

import asyncio
import itertools
import json
from typing import Any, Callable, Dict, Optional, Set

from ..api import WIRE_VERSION, Answer, ResultSet
from ..core.values import Null, null
from ..db.database import ManagedRelation
from ..errors import ReproError

# the wire vocabulary is derived from the shared op table, so the CLI,
# the linter, and the server agree on it by construction
from ..opschema import MUTATION_VERBS, QUERY_VERB, READ_VERBS  # noqa: F401


def decode_cell(relation: ManagedRelation, token: Any) -> Any:
    """One wire cell → an engine value (``{"n": null}`` mints a null)."""
    if isinstance(token, dict) and "n" in token and token["n"] is None:
        return null()
    return relation.decode_value(token)


def _decode_row(relation: ManagedRelation, cells: Any, what: str) -> list:
    if not isinstance(cells, (list, tuple)):
        raise ReproError(f"{what} must be an array of cells")
    return [decode_cell(relation, token) for token in cells]


def _index(request: dict) -> int:
    index = request.get("index")
    if not isinstance(index, int) or isinstance(index, bool):
        raise ReproError("'index' must be an integer")
    return index


def mutation(
    relation: ManagedRelation, verb: str, request: dict
) -> Callable[[], Dict[str, Any]]:
    """Build the closure the relation's writer will run for ``verb``.

    Decoding happens here, on the event loop, *before* the op enqueues —
    malformed cells fail fast without occupying the writer.  The closure
    returns the response fields; it reads ``relation.seq`` after
    applying, which is safe because the writer applies ops one at a
    time.
    """
    if verb == "insert":
        row = _decode_row(relation, request.get("row"), "'row'")

        def run() -> Dict[str, Any]:
            index = relation.insert(row)
            return {"index": index, "seq": relation.seq}

    elif verb == "delete":
        index = _index(request)

        def run() -> Dict[str, Any]:
            relation.delete(index)
            return {"seq": relation.seq}

    elif verb == "update":
        index = _index(request)
        changes = request.get("set")
        if not isinstance(changes, dict) or not changes:
            raise ReproError("'set' must be a non-empty object of attr: cell")
        decoded = {
            attr: decode_cell(relation, token) for attr, token in changes.items()
        }

        def run() -> Dict[str, Any]:
            relation.update(index, decoded)
            return {"seq": relation.seq}

    elif verb == "replace":
        index = _index(request)
        row = _decode_row(relation, request.get("row"), "'row'")

        def run() -> Dict[str, Any]:
            relation.replace(index, row)
            return {"seq": relation.seq}

    elif verb == "fill":
        index = _index(request)
        attr = request.get("attr")
        if not isinstance(attr, str):
            raise ReproError("'attr' must be an attribute name")
        value = decode_cell(relation, request.get("value"))

        def run() -> Dict[str, Any]:
            relation.fill(index, attr, value)
            return {"seq": relation.seq}

    elif verb == "reset":
        rows_spec = request.get("rows")
        if not isinstance(rows_spec, list):
            raise ReproError("'rows' must be an array of rows")
        rows = [_decode_row(relation, cells, "each row") for cells in rows_spec]

        def run() -> Dict[str, Any]:
            relation.reset(rows)
            return {"seq": relation.seq, "rows": len(relation)}

    elif verb == "adopt":

        def run() -> Dict[str, Any]:
            committed = relation.adopt()
            return {"seq": relation.seq, "committed": len(committed)}

    elif verb == "snapshot":

        def run() -> Dict[str, Any]:
            return {"depth": relation.snapshot(), "seq": relation.seq}

    elif verb == "rollback":

        def run() -> Dict[str, Any]:
            return {"depth": relation.rollback(), "seq": relation.seq}

    elif verb == "discard":

        def run() -> Dict[str, Any]:
            return {"discarded": relation.discard_snapshots(), "seq": relation.seq}

    else:  # pragma: no cover - dispatch guards this
        raise ReproError(f"unknown mutation verb {verb!r}")

    return run


def lint_batch(relation: ManagedRelation, requests: Any) -> list:
    """Statically check a mutation batch against the relation's live state.

    The server's fast-reject pre-pass: no closure is built, nothing is
    enqueued, no WAL byte moves.  Returns
    :class:`repro.analysis.Diagnostic` findings — error severity means
    the batch is provably doomed (the writer would fail the op at apply
    time) and must be refused before it consumes a group-commit slot.
    """
    from ..analysis import lint_requests

    session = relation.session
    return lint_requests(
        session.schema,
        session.fds,
        requests,
        rows=[row.values for row in session.rows],
        snapshot_depth=relation.outstanding_snapshots,
        known_null=relation.knows_null,
        decode=relation.decode_value,
    )


def encode_line(payload: dict) -> bytes:
    return (json.dumps(payload, sort_keys=True, separators=(",", ":")) + "\n").encode(
        "utf-8"
    )


async def run_tcp(server: Any, host: str, port: int) -> "asyncio.AbstractServer":
    """Bind ``server.handle`` to a TCP listener (JSON lines, pipelined).

    Each request line becomes its own task, so a slow detached read never
    heads-of-line-blocks the ops pipelined behind it; a per-connection
    lock keeps response lines whole.
    """

    async def on_connection(
        reader: asyncio.StreamReader, writer_stream: asyncio.StreamWriter
    ) -> None:
        write_lock = asyncio.Lock()
        in_flight: Set["asyncio.Task[None]"] = set()

        async def respond(response: dict) -> None:
            async with write_lock:
                writer_stream.write(encode_line(response))
                await writer_stream.drain()

        async def run_one(line: bytes) -> None:
            try:
                request = json.loads(line)
            except ValueError:
                response = {"id": None, "ok": False, "error": "request is not JSON"}
            else:
                response = await server.handle(request)
            try:
                await respond(response)
            except (ConnectionError, RuntimeError):
                pass  # client went away mid-response

        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                if not line.strip():
                    continue
                task = asyncio.get_running_loop().create_task(run_one(line))
                in_flight.add(task)
                task.add_done_callback(in_flight.discard)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        if in_flight:
            await asyncio.gather(*in_flight, return_exceptions=True)
        writer_stream.close()
        try:
            await writer_stream.wait_closed()
        except ConnectionError:  # pragma: no cover - racing disconnect
            pass

    return await asyncio.start_server(on_connection, host, port)


class Client:
    """A pipelining TCP client for one connection.

    ``call`` assigns a request id, writes the line, and awaits the
    matching response — many calls may be in flight at once (that is
    what makes group commit batch).  A response with ``ok: false``
    raises :class:`ServerError`.
    """

    def __init__(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._reader = reader
        self._writer = writer
        self._ids = itertools.count(1)
        self._waiting: Dict[Any, "asyncio.Future[dict]"] = {}
        self._pump: Optional["asyncio.Task[None]"] = None
        self._lock = asyncio.Lock()
        #: wire null id → the client-side Null object (one per id, so
        #: shared unknowns keep identity across answers on this client)
        self._nulls: Dict[Any, Null] = {}

    @classmethod
    async def connect(cls, host: str, port: int) -> "Client":
        reader, writer = await asyncio.open_connection(host, port)
        client = cls(reader, writer)
        client._pump = asyncio.get_running_loop().create_task(client._read_loop())
        return client

    async def call(self, do: str, **fields: Any) -> dict:
        request_id = next(self._ids)
        request = {"id": request_id, "do": do, **fields}
        future = asyncio.get_running_loop().create_future()
        self._waiting[request_id] = future
        async with self._lock:
            self._writer.write(encode_line(request))
            await self._writer.drain()
        response = await future
        if not response.get("ok"):
            raise ServerError(response.get("error", "unspecified server error"))
        return response

    # -- the unified answer schema (repro.api) -----------------------------

    def decode_token(self, token: Any) -> Any:
        """One wire cell → a client-side value (nulls keep identity)."""
        if isinstance(token, dict) and "n" in token:
            key = token["n"]
            null_obj = self._nulls.get(key)
            if null_obj is None:
                null_obj = Null(str(key))
                self._nulls[key] = null_obj
            return null_obj
        return token

    async def read(self, rel: str, verb: str, **fields: Any) -> Answer:
        """A read verb, parsed into a unified :class:`repro.api.Answer`.

        The raw response dict (legacy fields included) stays available
        via :meth:`call`; this is the schema-checked path — it raises on
        a wire-version mismatch instead of silently misreading.
        """
        response = await self.call(verb, rel=rel, **fields)
        return Answer.from_payload(response, decode=self.decode_token)

    async def query(
        self, q: str, mode: Optional[str] = None, **fields: Any
    ) -> ResultSet:
        """A database-scoped query, parsed into certain/maybe answers."""
        if mode is not None:
            fields["mode"] = mode
        response = await self.call(QUERY_VERB, q=q, **fields)
        return ResultSet.from_payload(response, decode=self.decode_token)

    async def close(self) -> None:
        if self._pump is not None:
            self._pump.cancel()
            try:
                await self._pump
            except asyncio.CancelledError:
                pass
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except ConnectionError:  # pragma: no cover - racing disconnect
            pass

    async def _read_loop(self) -> None:
        try:
            while True:
                line = await self._reader.readline()
                if not line:
                    break
                response = json.loads(line)
                future = self._waiting.pop(response.get("id"), None)
                if future is not None and not future.done():
                    future.set_result(response)
        except (ConnectionError, asyncio.CancelledError):
            raise
        finally:
            for future in self._waiting.values():
                if not future.done():
                    future.set_exception(ServerError("connection closed"))
            self._waiting.clear()


class ServerError(ReproError):
    """An ``ok: false`` response, re-raised client-side."""
