"""The paper's worked figures as constructible objects.

The scanned figures in the source are illegible; these are reconstructions
satisfying every property the prose states about them (see DESIGN.md §4 for
the constraint-by-constraint derivation).  Each constructor returns fresh
objects (fresh nulls), so tests can mutate freely.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..core.domain import Domain
from ..core.fd import FD, FDSet
from ..core.relation import Relation
from ..core.schema import RelationSchema
from ..core.truth import FALSE, TRUE, TruthValue
from ..core.values import null


def figure_1_scheme() -> Tuple[RelationSchema, FDSet]:
    """Figure 1.1: R(E#, SL, D#, CT) with E# -> SL,D# and D# -> CT.

    E# is the employee serial number, SL the salary, D# the department,
    CT the contract type.
    """
    schema = RelationSchema(
        "R",
        "E# SL D# CT",
        domains={"CT": Domain(["permanent", "temporary"], name="CT")},
    )
    fds = FDSet(["E# -> SL D#", "D# -> CT"])
    return schema, fds


def figure_1_2_instance() -> Relation:
    """Figure 1.2: a null-free instance in which both FDs hold."""
    schema, _ = figure_1_scheme()
    return Relation(
        schema,
        [
            (101, 50, "d1", "permanent"),
            (102, 60, "d1", "permanent"),
            (103, 50, "d2", "temporary"),
        ],
    )


def figure_1_3_instance() -> Relation:
    """Figure 1.3: the instance with nulls.

    Nulls sit on SL and CT so that both FDs still *weakly* hold (no
    substitution is forced into contradiction).
    """
    schema, _ = figure_1_scheme()
    return Relation(
        schema,
        [
            (101, null(), "d1", "permanent"),
            (102, 60, "d1", null()),
            (103, 50, "d2", "temporary"),
        ],
    )


@dataclass(frozen=True)
class Figure2Case:
    """One of Figure 2's four instances with its expected evaluation."""

    name: str
    relation: Relation
    expected_value: TruthValue
    expected_condition: str


def figure_2_fd() -> FD:
    """Figure 2's dependency f : AB -> C."""
    return FD("A B", "C")


def figure_2_cases() -> List[Figure2Case]:
    """The four instances r1-r4; ``t1`` is always the first row.

    * r1: null in t1[C]; unique AB pair        -> true  by [T2]
    * r2: null in t1[A]; no completion in r    -> true  by [T3]
    * r3: null in t1[A]; agreeing completion   -> true  by [T3]
    * r4: dom(A) = {a1, a2}; both completions
      present, all disagreeing on C            -> false by [F2]
    """
    plain = RelationSchema("R", "A B C")
    restricted = RelationSchema(
        "R", "A B C", domains={"A": Domain(["a1", "a2"], name="A")}
    )
    return [
        Figure2Case(
            "r1",
            Relation(plain, [("a1", "b1", null()), ("a2", "b2", "c2")]),
            TRUE,
            "T2",
        ),
        Figure2Case(
            "r2",
            Relation(plain, [(null(), "b1", "c1"), ("a2", "b2", "c2")]),
            TRUE,
            "T3",
        ),
        Figure2Case(
            "r3",
            Relation(plain, [(null(), "b1", "c1"), ("a2", "b1", "c1")]),
            TRUE,
            "T3",
        ),
        Figure2Case(
            "r4",
            Relation(
                restricted,
                [
                    (null(), "b1", "c1"),
                    ("a1", "b1", "c2"),
                    ("a2", "b1", "c3"),
                ],
            ),
            FALSE,
            "F2",
        ),
    ]


def section_6_example() -> Tuple[RelationSchema, FDSet, Relation]:
    """Section 6's opener: F = {A -> B, B -> C} on r = {(a,⊥,c1), (a,⊥,c2)}.

    Each FD weakly holds on its own; jointly they are unsatisfiable: B -> C
    forces the two B-nulls apart, which makes A -> B false.
    """
    schema = RelationSchema("R", "A B C")
    fds = FDSet(["A -> B", "B -> C"])
    relation = Relation(
        schema, [("a", null(), "c1"), ("a", null(), "c2")]
    )
    return schema, fds, relation


def figure_5() -> Tuple[RelationSchema, FDSet, Relation]:
    """Figure 5: F = {A -> B, C -> B} on a three-tuple instance.

    Applying A -> B first substitutes b1 for the null; C -> B first
    substitutes b2 — two different minimally incomplete states under the
    basic rules.  The extended rules drive the whole B column to *nothing*
    in either order.
    """
    schema = RelationSchema("R", "A B C")
    fds = FDSet(["A -> B", "C -> B"])
    relation = Relation(
        schema,
        [
            ("a1", null(), "c1"),
            ("a1", "b1", "c2"),
            ("a2", "b2", "c1"),
        ],
    )
    return schema, fds, relation
