"""Paper figure instances and seeded random workload generators."""

from .generator import (
    attribute_names,
    inject_nulls,
    random_fds,
    random_instance,
    random_satisfiable_instance,
    random_schema,
    satisfiable_with_nulls,
)
from .paper import (
    Figure2Case,
    figure_1_2_instance,
    figure_1_3_instance,
    figure_1_scheme,
    figure_2_cases,
    figure_2_fd,
    figure_5,
    section_6_example,
)

__all__ = [
    "Figure2Case",
    "attribute_names",
    "figure_1_2_instance",
    "figure_1_3_instance",
    "figure_1_scheme",
    "figure_2_cases",
    "figure_2_fd",
    "figure_5",
    "inject_nulls",
    "random_fds",
    "random_instance",
    "random_satisfiable_instance",
    "random_schema",
    "satisfiable_with_nulls",
    "section_6_example",
]
