"""Seeded workload generators for tests, examples and benchmarks.

Everything takes an explicit ``random.Random`` (or a seed) — benchmark
series must be reproducible run to run, and the EXPERIMENTS.md numbers are
regenerated from fixed seeds.

The central generators:

* :func:`random_satisfiable_instance` — a null-free instance in which a
  given FD set holds (built by repair passes, so arbitrary FD interactions
  are handled);
* :func:`inject_nulls` — punch fresh nulls into an instance.  Punching
  nulls into a satisfying instance preserves *weak* satisfiability by
  construction (the original instance is a witness completion), which is
  how benchmark workloads with known ground truth are made;
* :func:`random_instance` — unconstrained random instance (violation-heavy);
* :func:`random_fds` — random FD sets over a scheme.
"""

from __future__ import annotations

import random
import string
from typing import Iterable, List, Optional, Sequence, Tuple, Union

from ..core.domain import Domain
from ..core.fd import FD, FDSet
from ..core.relation import Relation
from ..core.schema import RelationSchema
from ..core.tuples import Row
from ..core.values import is_null, null

RandomLike = Union[int, random.Random]


def _rng(seed_or_rng: RandomLike) -> random.Random:
    if isinstance(seed_or_rng, random.Random):
        return seed_or_rng
    return random.Random(seed_or_rng)


def attribute_names(count: int) -> Tuple[str, ...]:
    """A1, A2, ... — stable attribute names for generated schemas."""
    return tuple(f"A{i}" for i in range(1, count + 1))


def random_schema(
    n_attrs: int,
    domain_size: Optional[int] = None,
    name: str = "R",
) -> RelationSchema:
    """A scheme with ``n_attrs`` attributes.

    ``domain_size=None`` leaves every domain unbounded (the usual setting);
    a number gives each attribute the finite domain ``{v1..vk}``.
    """
    attrs = attribute_names(n_attrs)
    domains = None
    if domain_size is not None:
        domains = {
            attr: Domain([f"{attr.lower()}v{i}" for i in range(domain_size)], name=attr)
            for attr in attrs
        }
    return RelationSchema(name, attrs, domains=domains)


def random_fds(
    seed_or_rng: RandomLike,
    attributes: Sequence[str],
    count: int,
    max_lhs: int = 2,
) -> FDSet:
    """``count`` random nontrivial FDs with small left-hand sides."""
    rng = _rng(seed_or_rng)
    attrs = list(attributes)
    fds: List[FD] = []
    guard = 0
    while len(fds) < count and guard < count * 50:
        guard += 1
        lhs_size = rng.randint(1, min(max_lhs, len(attrs)))
        lhs = rng.sample(attrs, lhs_size)
        remaining = [a for a in attrs if a not in lhs]
        if not remaining:
            continue
        rhs = [rng.choice(remaining)]
        fd = FD(lhs, rhs)
        if fd not in fds:
            fds.append(fd)
    return FDSet(fds)


def _value_pool(schema: RelationSchema, attr: str, pool_size: int) -> List:
    declared = schema.domain(attr)
    if declared.is_finite:
        return list(declared)
    return [f"{attr.lower()}v{i}" for i in range(pool_size)]


def random_instance(
    seed_or_rng: RandomLike,
    schema: RelationSchema,
    n_rows: int,
    pool_size: int = 4,
) -> Relation:
    """Unconstrained random rows (values drawn per column from a pool).

    Small pools make FD violations likely — the workload for "does the
    tester find the violation" benches.
    """
    rng = _rng(seed_or_rng)
    pools = {attr: _value_pool(schema, attr, pool_size) for attr in schema.attributes}
    rows = [
        [rng.choice(pools[attr]) for attr in schema.attributes]
        for _ in range(n_rows)
    ]
    return Relation(schema, rows)


def random_satisfiable_instance(
    seed_or_rng: RandomLike,
    schema: RelationSchema,
    fds: Iterable[FD],
    n_rows: int,
    pool_size: int = 8,
    max_passes: int = 50,
) -> Relation:
    """A null-free instance in which every FD of ``fds`` holds.

    Random rows are *repaired*: for each FD, rows are grouped by left-hand
    side and every group's right-hand values are overwritten with the
    group's first row's values.  Repairing one FD can break another (its
    left-hand side may have changed), so passes repeat to a fixpoint; in
    the rare non-converging case the still-violating rows are dropped,
    keeping the guarantee unconditional.
    """
    rng = _rng(seed_or_rng)
    fd_list = [fd.normalized() for fd in fds]
    pools = {attr: _value_pool(schema, attr, pool_size) for attr in schema.attributes}
    rows: List[List] = [
        [rng.choice(pools[attr]) for attr in schema.attributes]
        for _ in range(n_rows)
    ]
    positions = {attr: schema.position(attr) for attr in schema.attributes}

    def violations_exist() -> bool:
        for fd in fd_list:
            seen: dict = {}
            for row in rows:
                key = tuple(row[positions[a]] for a in fd.lhs)
                image = tuple(row[positions[a]] for a in fd.rhs)
                if seen.setdefault(key, image) != image:
                    return True
        return False

    for _ in range(max_passes):
        changed = False
        for fd in fd_list:
            representative: dict = {}
            for row in rows:
                key = tuple(row[positions[a]] for a in fd.lhs)
                image = tuple(row[positions[a]] for a in fd.rhs)
                kept = representative.setdefault(key, image)
                if kept != image:
                    for attr, value in zip(fd.rhs, kept):
                        row[positions[attr]] = value
                    changed = True
        if not changed:
            break
    if violations_exist():  # pragma: no cover - repair almost always converges
        surviving: List[List] = []
        for row in rows:
            candidate = Relation(schema, surviving + [row])
            from ..core.fd import all_hold_classical

            if all_hold_classical(fd_list, candidate):
                surviving.append(row)
        rows = surviving
    return Relation(schema, rows)


def inject_nulls(
    seed_or_rng: RandomLike,
    relation: Relation,
    density: float,
    attributes: Optional[Sequence[str]] = None,
) -> Relation:
    """Replace each (eligible) cell by a fresh null with probability
    ``density``.  Cells outside ``attributes`` (default: all) are kept."""
    rng = _rng(seed_or_rng)
    eligible = set(attributes or relation.schema.attributes)
    rows = []
    for row in relation.rows:
        values = []
        for attr, value in zip(relation.schema.attributes, row.values):
            if attr in eligible and not is_null(value) and rng.random() < density:
                values.append(null())
            else:
                values.append(value)
        rows.append(values)
    return Relation(relation.schema, rows)


def satisfiable_with_nulls(
    seed_or_rng: RandomLike,
    schema: RelationSchema,
    fds: Iterable[FD],
    n_rows: int,
    density: float,
    pool_size: int = 8,
) -> Tuple[Relation, Relation]:
    """A weakly-satisfiable instance with nulls plus its witness completion.

    Built by generating a satisfying null-free instance and punching nulls:
    the original instance completes the punched one, so weak satisfiability
    holds by construction.
    """
    rng = _rng(seed_or_rng)
    total = random_satisfiable_instance(
        rng, schema, fds, n_rows, pool_size=pool_size
    )
    return inject_nulls(rng, total, density), total
