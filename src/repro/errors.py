"""Exception hierarchy for the ``repro`` library.

All library-raised exceptions derive from :class:`ReproError`, so callers can
catch a single base class.  Subclasses separate the main failure families:
schema misuse, value/domain misuse, and algorithm preconditions (e.g. running
a null-free algorithm on an instance with nulls, or a convention that the
paper explicitly says cannot be combined with sorting).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every exception raised by the ``repro`` library."""


class SchemaError(ReproError):
    """A schema was constructed or used inconsistently.

    Raised for duplicate attribute names, references to attributes that are
    not part of the schema, rows of the wrong arity, and similar structural
    mistakes.
    """


class DomainError(ReproError):
    """A value is outside its attribute's declared domain, or an operation
    required a finite domain and the attribute's domain is unbounded.

    The paper assumes "domains are finite and are assumed known" (section 4).
    The library additionally supports unbounded domains; algorithms that
    genuinely need finiteness (brute-force completion enumeration, the F2
    "run out of domain values" case) raise this error instead of silently
    guessing.
    """


class NullsNotAllowedError(ReproError):
    """A classical (null-free) algorithm received an instance with nulls.

    Section 3 of the paper defines functional dependencies on relations
    "which at all times must contain tuples with non-null entries"; the
    classical interpreter refuses nulls rather than misinterpreting them.
    """


class ConventionError(ReproError):
    """A TEST-FDs variant was combined with a null convention it cannot
    implement.

    The paper's own footnote to Figure 3 notes that sorting null values under
    the *strong* convention (where a null compares equal to everything) is
    problematic and recommends the unsorted pairwise variant; the sort-merge
    implementation raises this error when the strong convention is requested
    on an instance where a left-hand side contains nulls.
    """


class NotMinimallyIncompleteError(ReproError):
    """The weak-convention TEST-FDs requires a minimally incomplete instance.

    Theorem 3 only guarantees correctness of the weak-convention test on
    instances where no NS-rule is applicable.  Callers that want the check on
    arbitrary instances should chase first (``repro.chase.minimal``).
    """


class InconsistentInstanceError(ReproError):
    """An operation that requires a consistent instance met the *nothing*
    element (the inconsistent data value of section 6)."""


class CodecError(ReproError):
    """A value, schema or op record could not be serialized or decoded.

    The durable codec (:mod:`repro.core.codec`) supports JSON-scalar
    constants plus the library's own :class:`~repro.core.values.Null` /
    ``NOTHING`` values; anything else — and any malformed record read back
    from disk — raises this error instead of silently mangling data.
    """


class DatabaseError(ReproError):
    """A :class:`repro.db.Database` was opened, read or mutated
    inconsistently: missing or malformed manifest/checkpoint files,
    corrupt (non-final) op-log records, unknown or duplicate relation
    names, and similar storage-level failures.
    """


class ScriptError(ReproError):
    """An op script (``repro session`` / ``repro db ingest``) failed.

    Carries the failing op's location so the CLI can point at it:
    ``line`` is the 1-based line number, ``text`` the op text as written.
    ``code`` is the diagnostic code from :mod:`repro.analysis.diagnostics`
    (classified from ``cause`` when not given explicitly), so runtime
    failures and static ``repro lint`` findings report identically.
    """

    def __init__(
        self,
        line: int,
        text: str,
        cause: Exception | str,
        code: str | None = None,
    ) -> None:
        self.line = line
        self.text = text
        self.cause = cause
        if code is None:
            from .analysis.diagnostics import classify_cause

            code = classify_cause(cause)
        self.code = code
        super().__init__(f"line {line}: {text!r}: {cause}")

    def diagnostic(self):
        """This failure as a :class:`repro.analysis.Diagnostic` — the same
        schema ``repro lint`` and the server's batch pre-pass emit."""
        from .analysis.diagnostics import Diagnostic

        return Diagnostic(
            code=self.code, line=self.line, op=self.text, message=str(self.cause)
        )


class SanitizerError(ReproError):
    """An engine structural invariant was violated (sanitizer finding).

    Raised only when the opt-in invariant sanitizer
    (:mod:`repro.analysis.sanitize`, armed via ``REPRO_SANITIZE=1`` or
    ``sanitize=True``) audits a core/session/database after a mutation and
    finds its mirrored structures out of sync — an occurrence-index entry
    pointing at a cell whose class root moved, a signature bucket whose
    members disagree with the recorded signatures, a slot-indirection table
    that stopped being injective, a WAL whose seq numbers skipped.  The
    message names the structure, the keys involved, and both sides of the
    disagreement.
    """
