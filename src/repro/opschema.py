"""The one op/request vocabulary every surface shares.

Before this module, three surfaces spelled the same vocabulary three
times: :func:`repro.cli.run_script` (the ``repro session`` / ``repro db
ingest`` script ops), :mod:`repro.analysis.check` (the lint checker's
``SCRIPT_OPS`` / ``BATCH_VERBS`` mirrors), and
:mod:`repro.server.protocol` (the wire verbs).  A new op meant three
edits and a pinning test to keep them honest.  Now each op is **one**
:class:`OpSpec` row in :data:`OPS`; the per-surface tuples the rest of
the system consumes (:data:`SCRIPT_OPS`, :data:`MUTATION_VERBS`,
:data:`READ_VERBS`, :data:`BATCH_VERBS`) are *derived* from it, so lint,
CLI, and server pick a new op up together.

The module is deliberately dependency-free (stdlib only): the analysis
layer imports it without touching the server, and the server without
touching the CLI.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

#: script/CSV cell spellings that read as "a fresh null" — shared by the
#: CLI cell parser and the static checker's abstract cell lifter.
NULL_TOKENS: Tuple[str, ...] = ("", "-", "NULL", "null")


@dataclass(frozen=True)
class OpSpec:
    """One operation, described once for every surface.

    ``kind`` is ``"mutation"`` (journalled, goes through a writer),
    ``"read"`` (answered from a consistent cut), or ``"admin"``
    (catalog/durability control).  ``script`` / ``wire`` say which
    surfaces expose it; ``scope`` is ``"relation"`` for ops addressed to
    one relation and ``"database"`` for ops that may span several (the
    ``query`` verb joins across relations).  ``script_rank`` /
    ``wire_rank`` order the derived tuples (the orders predate this
    module and are kept stable for rendered hints and docs).
    """

    name: str
    kind: str
    script: bool
    wire: bool
    scope: str = "relation"
    durable_only: bool = False
    script_rank: int = 0
    wire_rank: int = 0
    summary: str = ""


OPS: Tuple[OpSpec, ...] = (
    OpSpec("insert", "mutation", True, True, script_rank=0, wire_rank=0,
           summary="append one row"),
    OpSpec("delete", "mutation", True, True, script_rank=1, wire_rank=1,
           summary="remove the row at an index"),
    OpSpec("update", "mutation", True, True, script_rank=2, wire_rank=2,
           summary="assign attributes on the row at an index"),
    OpSpec("replace", "mutation", True, True, script_rank=3, wire_rank=3,
           summary="swap the whole tuple at an index"),
    OpSpec("fill", "mutation", True, True, script_rank=4, wire_rank=4,
           summary="ground a null cell with a value"),
    OpSpec("reset", "mutation", False, True, wire_rank=5,
           summary="replace the instance wholesale"),
    OpSpec("adopt", "mutation", True, True, script_rank=5, wire_rank=6,
           summary="commit forced substitutions into the rows"),
    OpSpec("snapshot", "mutation", True, True, script_rank=6, wire_rank=7,
           summary="push a rollback mark"),
    OpSpec("rollback", "mutation", True, True, script_rank=7, wire_rank=8,
           summary="pop + restore the latest mark"),
    OpSpec("discard", "mutation", False, True, wire_rank=9,
           summary="drop all outstanding marks"),
    OpSpec("checkpoint", "admin", True, True, durable_only=True,
           script_rank=8,
           summary="absorb the WAL tail into the snapshot"),
    OpSpec("rows", "read", False, True, wire_rank=0,
           summary="the raw rows at the cut"),
    OpSpec("result", "read", False, True, wire_rank=1,
           summary="the maintained fixpoint at the cut"),
    OpSpec("check", "read", True, True, script_rank=9, wire_rank=2,
           summary="TEST-FDs against the maintained instance"),
    OpSpec("has_nothing", "read", False, True, wire_rank=3,
           summary="Theorem 4(b) weak-satisfiability verdict"),
    OpSpec("explain", "read", True, True, script_rank=12, wire_rank=4,
           summary="narrate the maintained chase"),
    OpSpec("stats", "read", True, True, script_rank=10, wire_rank=5,
           summary="op-outcome and durability counters"),
    OpSpec("show", "read", True, False, script_rank=11,
           summary="print the maintained instance"),
    OpSpec("query", "read", False, True, scope="database",
           wire_rank=6,
           summary="relational-algebra query with certain/maybe answers; "
           "plan-linted before any lease, optimized before evaluation, "
           "`explain: true` returns the plan instead"),
)

SPECS: Dict[str, OpSpec] = {spec.name: spec for spec in OPS}


def _ordered(names, key):
    return tuple(sorted(names, key=key))


#: the session/db op-script vocabulary (``repro session`` / ``repro db
#: ingest`` / ``repro lint``), in documentation order.
SCRIPT_OPS: Tuple[str, ...] = _ordered(
    (s.name for s in OPS if s.script), lambda n: SPECS[n].script_rank
)

#: wire verbs routed through a relation's writer (journalled mutations).
MUTATION_VERBS: Tuple[str, ...] = _ordered(
    (s.name for s in OPS if s.wire and s.kind == "mutation"),
    lambda n: SPECS[n].wire_rank,
)

#: wire verbs answered from a single relation's consistent-cut lease.
READ_VERBS: Tuple[str, ...] = _ordered(
    (s.name for s in OPS
     if s.wire and s.kind == "read" and s.scope == "relation"),
    lambda n: SPECS[n].wire_rank,
)

#: the database-scoped read verb (may lease several relations at once).
QUERY_VERB: str = "query"

#: verbs admissible inside a server ``batch`` bundle — exactly the
#: journalled mutations (reads and admin verbs cannot ride in a batch).
BATCH_VERBS: Tuple[str, ...] = MUTATION_VERBS
