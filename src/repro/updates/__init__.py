"""Modification operations under weak/strong consistency (section 7)."""

from .guarded import (
    POLICY_STRONG,
    POLICY_WEAK,
    GuardedRelation,
    UpdateResult,
)

__all__ = [
    "GuardedRelation",
    "POLICY_STRONG",
    "POLICY_WEAK",
    "UpdateResult",
]
