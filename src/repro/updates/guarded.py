"""Modification operations under weak consistency (section 7's programme).

The paper closes with: "more research is needed on the semantics of the
ways a database acquires information.  This acquisition may be internal
(non-ambiguous substitution of nulls), or external (modification
operations by the users)" — pointing at [Graham and Vassiliou 80].  This
module implements that programme on top of the machinery the paper *did*
pin down:

* **admission** — an external modification is accepted iff the resulting
  instance stays (weakly or strongly, per policy) satisfiable; weak
  admission is decided by the chase (Theorem 4(b)), strong admission by
  TEST-FDs under the strong convention (Theorem 2);
* **internal acquisition** — after an accepted change, the NS-rules may
  ground nulls or link them with NECs; ``propagate=True`` adopts the
  minimally incomplete instance, so the database only ever stores forced,
  never guessed, information;
* **grounding** — a user may :meth:`GuardedRelation.fill` a null with a
  concrete value; the fill is admitted iff it is consistent with every
  substitution the constraints force.

Deletions are always admitted: removing a tuple removes constraints, and
both satisfiability notions are preserved under subsets (each surviving
tuple's completions only lose potential violators) — asserted in tests
rather than trusted.

The guard re-chases after each accepted change — stateless and correct
for mixed workloads.  For append-only streams,
:class:`repro.chase.IncrementalChase` maintains the fixpoint in amortized
near-linear total time (ablation A2); it is not used here because
admission may *reject* a change, and congruence merges are not invertible
(rollback would need an O(n) state snapshot per attempt).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple, Union

from ..chase.engine import MODE_BASIC, ChaseResult
from ..chase.minimal import minimally_incomplete, weakly_satisfiable
from ..core.fd import FDInput, FDSet, as_fd
from ..core.relation import Relation
from ..core.schema import RelationSchema
from ..core.tuples import Row
from ..core.values import NOTHING, Null, is_null
from ..errors import ReproError, SchemaError
from ..testfd import CONVENTION_STRONG, check_fds

POLICY_WEAK = "weak"
POLICY_STRONG = "strong"


@dataclass(frozen=True)
class UpdateResult:
    """Outcome of one modification attempt."""

    accepted: bool
    operation: str
    reason: str
    #: substitutions the chase adopted after this operation (null -> value)
    forced: Dict[Null, Any] = field(default_factory=dict)

    def __bool__(self) -> bool:
        return self.accepted


class GuardedRelation:
    """A relation instance that enforces an FD set across modifications.

    The guard is *optimistic about nulls*: under the default ``weak``
    policy a change is rejected only when it makes the constraints
    certainly violated (no completion satisfies them) — the paper's answer
    to "overconstrained" databases whose validity checks otherwise mostly
    prove "that most of the data is dirty".

    With ``propagate=True`` (default) every accepted change is followed by
    the basic NS-rule chase, adopting forced substitutions and NECs — the
    "internal acquisition" channel.
    """

    def __init__(
        self,
        schema: RelationSchema,
        fds: Iterable[FDInput],
        rows: Iterable[Sequence[Any]] = (),
        policy: str = POLICY_WEAK,
        propagate: bool = True,
    ) -> None:
        if policy not in (POLICY_WEAK, POLICY_STRONG):
            raise ValueError(f"unknown policy {policy!r}")
        self.schema = schema
        self.fds = FDSet([as_fd(fd).validate(schema) for fd in fds])
        self.policy = policy
        self.propagate = propagate
        self.log: List[UpdateResult] = []
        initial = Relation(schema, rows)
        if not self._admissible(initial):
            raise ReproError(
                f"initial instance does not satisfy the FDs under the "
                f"{policy!r} policy"
            )
        self._relation = self._settle(initial)[0]

    # -- views ---------------------------------------------------------------

    @property
    def relation(self) -> Relation:
        """The current instance (chased, when propagation is on)."""
        return self._relation

    def __len__(self) -> int:
        return len(self._relation)

    def __iter__(self):
        return iter(self._relation)

    def to_text(self) -> str:
        return self._relation.to_text()

    # -- policy plumbing -----------------------------------------------------------

    def _admissible(self, candidate: Relation) -> bool:
        if self.policy == POLICY_STRONG:
            return check_fds(candidate, self.fds, CONVENTION_STRONG).satisfied
        return weakly_satisfiable(candidate, self.fds)

    def _settle(self, candidate: Relation) -> Tuple[Relation, Dict[Null, Any]]:
        """Apply internal acquisition; returns (instance, forced subs)."""
        if not self.propagate:
            return candidate, {}
        result: ChaseResult = minimally_incomplete(
            candidate, self.fds, mode=MODE_BASIC
        )
        forced = {
            original: value
            for original, value in result.substitutions.items()
            if value is not NOTHING
        }
        return result.relation, forced

    def _attempt(
        self, operation: str, candidate: Relation, detail: str
    ) -> UpdateResult:
        if not self._admissible(candidate):
            outcome = UpdateResult(
                False,
                operation,
                f"{detail}: would make the constraints "
                + (
                    "unsatisfiable in every completion"
                    if self.policy == POLICY_WEAK
                    else "not strongly satisfied"
                ),
            )
        else:
            settled, forced = self._settle(candidate)
            self._relation = settled
            outcome = UpdateResult(True, operation, detail, forced)
        self.log.append(outcome)
        return outcome

    # -- modifications ---------------------------------------------------------------

    def insert(self, values: Union[Sequence[Any], Row]) -> UpdateResult:
        """Admit a new tuple if the constraints stay satisfiable."""
        row = values if isinstance(values, Row) else Row(self.schema, values)
        candidate = self._relation.with_rows([row])
        return self._attempt("insert", candidate, f"insert {row!r}")

    def delete(self, index: int) -> UpdateResult:
        """Remove the tuple at ``index`` (always admissible)."""
        if not 0 <= index < len(self._relation):
            raise SchemaError(f"no row at index {index}")
        removed = self._relation[index]
        rows = [r for i, r in enumerate(self._relation.rows) if i != index]
        return self._attempt(
            "delete", Relation(self.schema, rows), f"delete {removed!r}"
        )

    def update(self, index: int, changes: Dict[str, Any]) -> UpdateResult:
        """Modify attributes of the tuple at ``index`` (check-then-swap)."""
        if not 0 <= index < len(self._relation):
            raise SchemaError(f"no row at index {index}")
        current = self._relation[index]
        mapping = current.as_dict()
        for attr, value in changes.items():
            if attr not in self.schema:
                raise SchemaError(f"unknown attribute {attr!r}")
            mapping[attr] = value
        replacement = Row.from_mapping(self.schema, mapping)
        rows = [
            replacement if i == index else r
            for i, r in enumerate(self._relation.rows)
        ]
        return self._attempt(
            "update",
            Relation(self.schema, rows),
            f"update row {index} with {changes}",
        )

    def fill(self, index: int, attribute: str, value: Any) -> UpdateResult:
        """Ground a null with a user-supplied constant.

        Rejected when the cell is not null, or when the constraints force a
        *different* value for it (the chase's substitution is "the only
        value that a user can insert without the creation of an
        inconsistency" — section 4).
        """
        if not 0 <= index < len(self._relation):
            raise SchemaError(f"no row at index {index}")
        cell = self._relation[index][attribute]
        if not is_null(cell):
            return self._attempt_rejection(
                "fill",
                f"fill row {index}.{attribute}: cell is not null "
                f"(holds {cell!r})",
            )
        substitution = {cell: value}
        rows = [row.substitute(substitution) for row in self._relation.rows]
        return self._attempt(
            "fill",
            Relation(self.schema, rows),
            f"fill row {index}.{attribute} := {value!r}",
        )

    def _attempt_rejection(self, operation: str, reason: str) -> UpdateResult:
        outcome = UpdateResult(False, operation, reason)
        self.log.append(outcome)
        return outcome

    # -- reporting ---------------------------------------------------------------------

    def history(self) -> List[str]:
        """One line per attempted operation, for audits and examples."""
        return [
            f"{'ACCEPT' if entry.accepted else 'REJECT'} {entry.operation}: "
            f"{entry.reason}"
            + (
                f" [forced {len(entry.forced)} substitution(s)]"
                if entry.forced
                else ""
            )
            for entry in self.log
        ]
