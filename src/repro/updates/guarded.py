"""Modification operations under weak consistency (section 7's programme).

The paper closes with: "more research is needed on the semantics of the
ways a database acquires information.  This acquisition may be internal
(non-ambiguous substitution of nulls), or external (modification
operations by the users)" — pointing at [Graham and Vassiliou 80].  This
module implements that programme on top of the machinery the paper *did*
pin down:

* **admission** — an external modification is accepted iff the resulting
  instance stays (weakly or strongly, per policy) satisfiable; weak
  admission is decided by the chase (Theorem 4(b)), strong admission by
  TEST-FDs under the strong convention (Theorem 2);
* **internal acquisition** — after an accepted change, the NS-rules may
  ground nulls or link them with NECs; ``propagate=True`` adopts the
  minimally incomplete instance, so the database only ever stores forced,
  never guessed, information;
* **grounding** — a user may :meth:`GuardedRelation.fill` a null with a
  concrete value; the fill is admitted iff it is consistent with every
  substitution the constraints force.

Deletions are always admitted: removing a tuple removes constraints, and
both satisfiability notions are preserved under subsets (each surviving
tuple's completions only lose potential violators) — asserted in tests
rather than trusted.

The guard runs on a :class:`repro.chase.ChaseSession`.  Weak admission
is the session's live ``has_nothing`` verdict after optimistically
applying the change; an inadmissible change is un-happened through the
session's backtrackable trail (snapshot → try → rollback), so a rejected
attempt costs the work it caused plus its undo — not a re-chase.
Inserts and fills maintain the fixpoint incrementally.  Deletes and
updates under ``propagate`` take a level rebuild instead: the stored
rows carry ratcheted (adopted) information a trail rewind would peel
back, but because those rows are already a fixpoint the rebuild is a
single encode-and-sign pass, not the seed's iterate-to-convergence
re-chase.  On an admissible (weakly satisfiable) instance the extended
fixpoint never poisons, which makes it coincide with the basic NS-rule
fixpoint the paper's "internal acquisition" adopts: the session's
maintained instance *is* the settled instance earlier revisions
re-chased for.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Sequence, Union

from ..chase.session import ChaseSession
from ..core.fd import FDInput, FDSet, as_fd
from ..core.relation import Relation
from ..core.schema import RelationSchema
from ..core.tuples import Row
from ..core.values import NOTHING, Null, is_null
from ..errors import ReproError, SchemaError
from ..testfd import CONVENTION_STRONG, check_fds

POLICY_WEAK = "weak"
POLICY_STRONG = "strong"


@dataclass(frozen=True)
class UpdateResult:
    """Outcome of one modification attempt."""

    accepted: bool
    operation: str
    reason: str
    #: substitutions the chase adopted after this operation (null -> value)
    forced: Dict[Null, Any] = field(default_factory=dict)

    def __bool__(self) -> bool:
        return self.accepted


class GuardedRelation:
    """A relation instance that enforces an FD set across modifications.

    The guard is *optimistic about nulls*: under the default ``weak``
    policy a change is rejected only when it makes the constraints
    certainly violated (no completion satisfies them) — the paper's answer
    to "overconstrained" databases whose validity checks otherwise mostly
    prove "that most of the data is dirty".

    With ``propagate=True`` (default) the stored instance is the session's
    maintained minimally incomplete fixpoint — forced substitutions and
    NECs adopted as they become forced, the "internal acquisition"
    channel.  With ``propagate=False`` the raw tuples are stored verbatim
    and the session is consulted for admission only.
    """

    def __init__(
        self,
        schema: RelationSchema,
        fds: Iterable[FDInput],
        rows: Iterable[Sequence[Any]] = (),
        policy: str = POLICY_WEAK,
        propagate: bool = True,
    ) -> None:
        if policy not in (POLICY_WEAK, POLICY_STRONG):
            raise ValueError(f"unknown policy {policy!r}")
        self.schema = schema
        self.fds = FDSet([as_fd(fd).validate(schema) for fd in fds])
        self.policy = policy
        self.propagate = propagate
        self.log: List[UpdateResult] = []
        initial = Relation(schema, rows)
        self._session = ChaseSession(schema, self.fds)
        for row in initial.rows:
            self._session.insert(row)
        admissible = (
            check_fds(initial, self.fds, CONVENTION_STRONG).satisfied
            if policy == POLICY_STRONG
            else not self._session.has_nothing
        )
        if not admissible:
            raise ReproError(
                f"initial instance does not satisfy the FDs under the "
                f"{policy!r} policy"
            )
        if propagate:
            self._session.adopt()
        self._refresh()

    # -- views ---------------------------------------------------------------

    @property
    def relation(self) -> Relation:
        """The current instance (chased, when propagation is on)."""
        return self._relation

    @property
    def session(self) -> ChaseSession:
        """The underlying maintained chase session (read-only use)."""
        return self._session

    def __len__(self) -> int:
        return len(self._relation)

    def __iter__(self):
        return iter(self._relation)

    def to_text(self) -> str:
        return self._relation.to_text()

    # -- policy plumbing -----------------------------------------------------

    def _refresh(self) -> None:
        self._relation = (
            self._session.result().relation
            if self.propagate
            else self._session.raw_relation()
        )

    def _attempt(self, operation: str, detail: str, mutate, candidate) -> UpdateResult:
        """Optimistically apply ``mutate`` to the session; undo on
        inadmissibility.

        ``candidate`` is the would-be instance at the stored-view level,
        used only for the strong policy's stateless Theorem-2 check (the
        strong convention judges the instance *as stored*, nulls
        unresolved — the maintained fixpoint cannot answer that).  Weak
        admission is the session's live Theorem-4(b) verdict.
        """
        if self.policy == POLICY_STRONG:
            if not check_fds(candidate, self.fds, CONVENTION_STRONG).satisfied:
                return self._log_rejection(
                    operation,
                    f"{detail}: would make the constraints not strongly satisfied",
                )
            before = self._forced_ids()
            mutate()  # strong implies weak: the session cannot poison
        else:
            before = self._forced_ids()
            snap = self._session.snapshot()
            mutate()
            if self._session.has_nothing:
                self._session.rollback(snap)
                return self._log_rejection(
                    operation,
                    f"{detail}: would make the constraints unsatisfiable in "
                    "every completion",
                )
        outcome = UpdateResult(True, operation, detail, self._forced_delta(before))
        if self.propagate:
            # internal acquisition is a ratchet: forced substitutions and
            # NEC links become stored data, surviving later modifications
            # of the tuples that forced them
            self._session.adopt()
        self._refresh()
        self.log.append(outcome)
        return outcome

    def _forced_ids(self) -> Dict[int, Any]:
        if not self.propagate:
            return {}
        return {id(n): v for n, v in self._session.substitutions().items()}

    def _forced_delta(self, before: Dict[int, Any]) -> Dict[Null, Any]:
        """Substitutions this operation newly forced (internal acquisition)."""
        if not self.propagate:
            return {}
        return {
            n: v
            for n, v in self._session.substitutions().items()
            if v is not NOTHING and id(n) not in before
        }

    def _log_rejection(self, operation: str, reason: str) -> UpdateResult:
        outcome = UpdateResult(False, operation, reason)
        self.log.append(outcome)
        return outcome

    # -- modifications -------------------------------------------------------

    def insert(self, values: Union[Sequence[Any], Row]) -> UpdateResult:
        """Admit a new tuple if the constraints stay satisfiable."""
        row = values if isinstance(values, Row) else Row(self.schema, values)
        return self._attempt(
            "insert",
            f"insert {row!r}",
            lambda: self._session.insert(row),
            self._relation.with_rows([row]),
        )

    def delete(self, index: int) -> UpdateResult:
        """Remove the tuple at ``index`` (always admissible)."""
        if not 0 <= index < len(self._relation):
            raise SchemaError(f"no row at index {index}")
        removed = self._relation[index]
        rows = [r for i, r in enumerate(self._relation.rows) if i != index]
        # under propagation the stored rows carry ratcheted (adopted)
        # information; the session's own ratchet guard makes its delete
        # take the level-rebuild path there, never a rewind that could
        # peel adopted data back
        return self._attempt(
            "delete",
            f"delete {removed!r}",
            lambda: self._session.delete(index),
            Relation(self.schema, rows),
        )

    def update(self, index: int, changes: Dict[str, Any]) -> UpdateResult:
        """Modify attributes of the tuple at ``index`` (try-then-undo).

        The replacement starts from the *stored* tuple — with propagation
        on, values the chase already grounded stay grounded.
        """
        if not 0 <= index < len(self._relation):
            raise SchemaError(f"no row at index {index}")
        mapping = self._relation[index].as_dict()
        for attr, value in changes.items():
            if attr not in self.schema:
                raise SchemaError(f"unknown attribute {attr!r}")
            mapping[attr] = value
        replacement = Row.from_mapping(self.schema, mapping)
        rows = [
            replacement if i == index else r
            for i, r in enumerate(self._relation.rows)
        ]
        return self._attempt(
            "update",
            f"update row {index} with {changes}",
            lambda: self._session.replace(index, replacement),
            Relation(self.schema, rows),
        )

    def fill(self, index: int, attribute: str, value: Any) -> UpdateResult:
        """Ground a null with a user-supplied constant.

        Rejected when the cell is not null, or when the constraints force a
        *different* value for it (the chase's substitution is "the only
        value that a user can insert without the creation of an
        inconsistency" — section 4).
        """
        if not 0 <= index < len(self._relation):
            raise SchemaError(f"no row at index {index}")
        cell = self._relation[index][attribute]
        if not is_null(cell):
            return self._log_rejection(
                "fill",
                f"fill row {index}.{attribute}: cell is not null "
                f"(holds {cell!r})",
            )
        substitution = {cell: value}
        rows = [row.substitute(substitution) for row in self._relation.rows]
        return self._attempt(
            "fill",
            f"fill row {index}.{attribute} := {value!r}",
            lambda: self._session.fill(index, attribute, value),
            Relation(self.schema, rows),
        )

    # -- reporting -----------------------------------------------------------

    def history(self) -> List[str]:
        """One line per attempted operation, for audits and examples."""
        return [
            f"{'ACCEPT' if entry.accepted else 'REJECT'} {entry.operation}: "
            f"{entry.reason}"
            + (
                f" [forced {len(entry.forced)} substitution(s)]"
                if entry.forced
                else ""
            )
            for entry in self.log
        ]
