"""Reporting helpers shared by the benchmark harness.

Benchmarks print the paper-shaped series (who wins, slopes, crossovers) in
fixed-width tables that EXPERIMENTS.md quotes verbatim; this module keeps
the formatting in one place so every bench reads the same.
"""

from __future__ import annotations

import math
import os
import time
from typing import Any, Callable, List, Optional, Sequence, Tuple

#: environment switch honored by the benchmarks' size/repeat helpers; set
#: by ``benchmarks/run_all.py --quick`` so the whole suite can run as a
#: fast smoke pass that still exercises every series.
QUICK_ENV = "REPRO_BENCH_QUICK"


def quick_mode() -> bool:
    """True when the quick-bench environment switch is on."""
    return os.environ.get(QUICK_ENV, "").strip().lower() not in ("", "0", "false")


def bench_repeat(repeat: int) -> int:
    """``repeat`` normally; a single repetition in quick mode."""
    return 1 if quick_mode() else repeat


def bench_sizes(sizes: Sequence[int]) -> List[int]:
    """A size ladder, truncated to its first half (min 2 rungs) in quick
    mode — slopes stay computable, wall time drops by the ladder's top."""
    ladder = list(sizes)
    if quick_mode() and len(ladder) > 2:
        ladder = ladder[: max(2, len(ladder) // 2)]
    return ladder


class Table:
    """A fixed-width text table with a title."""

    def __init__(self, title: str, headers: Sequence[str]) -> None:
        self.title = title
        self.headers = list(headers)
        self.rows: List[List[str]] = []

    def add_row(self, *cells: Any) -> None:
        if len(cells) != len(self.headers):
            raise ValueError(
                f"expected {len(self.headers)} cells, got {len(cells)}"
            )
        self.rows.append([_fmt(cell) for cell in cells])

    def render(self) -> str:
        widths = [
            max(len(self.headers[i]), *(len(r[i]) for r in self.rows))
            if self.rows
            else len(self.headers[i])
            for i in range(len(self.headers))
        ]
        lines = [self.title, "=" * len(self.title)]
        lines.append(
            "  ".join(h.ljust(widths[i]) for i, h in enumerate(self.headers))
        )
        lines.append("  ".join("-" * w for w in widths))
        for row in self.rows:
            lines.append(
                "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row))
            )
        return "\n".join(lines)

    def show(self) -> None:
        print()
        print(self.render())


def _fmt(cell: Any) -> str:
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        if abs(cell) < 1e-3 or abs(cell) >= 1e5:
            return f"{cell:.3e}"
        return f"{cell:.4g}"
    return str(cell)


def time_call(
    func: Callable[[], Any], repeat: int = 3, number: int = 1
) -> float:
    """Best-of-``repeat`` wall time of calling ``func`` ``number`` times."""
    best = math.inf
    for _ in range(repeat):
        start = time.perf_counter()
        for _ in range(number):
            func()
        elapsed = (time.perf_counter() - start) / number
        best = min(best, elapsed)
    return best


def loglog_slope(xs: Sequence[float], ys: Sequence[float]) -> float:
    """Least-squares slope of ``log y`` against ``log x``.

    The scaling-shape statistic used by the E3/E5 experiments: a slope
    near 1 is linear(ish — n log n reads ~1.1), near 2 quadratic, near 3
    cubic.
    """
    if len(xs) != len(ys) or len(xs) < 2:
        raise ValueError("need at least two (x, y) points")
    lx = [math.log(x) for x in xs]
    ly = [math.log(y) for y in ys]
    n = len(lx)
    mean_x = sum(lx) / n
    mean_y = sum(ly) / n
    sxx = sum((x - mean_x) ** 2 for x in lx)
    sxy = sum((x - mean_x) * (y - mean_y) for x, y in zip(lx, ly))
    if sxx == 0:
        raise ValueError("degenerate x values")
    return sxy / sxx


def geometric_sizes(start: int, factor: float, count: int) -> List[int]:
    """Geometric size ladder for scaling sweeps (deduplicated, ascending)."""
    sizes: List[int] = []
    value = float(start)
    for _ in range(count):
        size = int(round(value))
        if not sizes or size > sizes[-1]:
            sizes.append(size)
        value *= factor
    return sizes
