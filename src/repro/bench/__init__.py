"""Shared helpers for the benchmark harness (benchmarks/)."""

from .report import Table, geometric_sizes, loglog_slope, time_call

__all__ = ["Table", "geometric_sizes", "loglog_slope", "time_call"]
