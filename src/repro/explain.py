"""Human-readable explanations of the library's verdicts.

The paper's notions answer *yes/no/unknown*; adopting them in practice
needs the *why*: which Proposition 1 condition fired, which tuples witness
a TEST-FDs failure, which NS-rules forced which substitutions.  This
module renders those narratives (used by the CLI and handy in notebooks);
each function returns plain text with one fact per line.
"""

from __future__ import annotations

from typing import Any, Iterable, List

from .chase.engine import ChaseResult
from .core.fd import FDInput, as_fd
from .core.interpretation import evaluate_fd, proposition1_case
from .core.relation import Relation
from .core.truth import FALSE, TRUE, UNKNOWN
from .core.tuples import Row
from .core.values import is_null
from .errors import ReproError
from .testfd.pairwise import TestFDsOutcome

_CONDITION_TEXT = {
    "T1": "the tuple is total and no tuple agrees on X while differing on Y",
    "T2": "Y has a null but the tuple's X value is unique in the instance",
    "T3": (
        "X has a null and every completion of it present in the instance "
        "agrees with the tuple's Y value"
    ),
    "F1": "a tuple agrees on X and differs on Y (a classical violation)",
    "F2": (
        "every domain value for the X null appears in the instance and all "
        "of them disagree with the tuple's Y value (substitutions exhausted)"
    ),
}


def explain_fd_value(fd: FDInput, row: Row, relation: Relation) -> str:
    """Narrate ``f(t, r)``: the value, and the Proposition 1 condition when
    its setting applies (the rest of the instance null-free)."""
    fd = as_fd(fd)
    value = evaluate_fd(fd, row, relation)
    lines: List[str] = [f"f = {fd!r} evaluated at t = {row!r}"]
    nulls = row.null_attributes(fd.attributes)
    if nulls:
        lines.append(f"t carries nulls on: {', '.join(nulls)}")
    else:
        lines.append("t is total on the dependency's attributes")
    lines.append(f"value: {value}")
    try:
        condition = proposition1_case(fd, row, relation).condition
    except ReproError:
        condition = None
        lines.append(
            "(other tuples carry nulls too: evaluated over their "
            "completions, outside Proposition 1's single-null setting)"
        )
    if condition is not None:
        lines.append(
            f"Proposition 1 condition [{condition}]: "
            f"{_CONDITION_TEXT[condition]}"
        )
    elif value is UNKNOWN:
        lines.append(
            "no condition applies: some substitutions satisfy the "
            "dependency and some violate it"
        )
    return "\n".join(lines)


def explain_outcome(outcome: TestFDsOutcome, relation: Relation) -> str:
    """Narrate a TEST-FDs answer, including the violating pair on *no*."""
    if outcome.satisfied:
        return "TEST-FDs: yes — no violating pair of tuples exists"
    witness = outcome.witness
    first = relation[witness.first_row]
    second = relation[witness.second_row]
    return "\n".join(
        [
            "TEST-FDs: no",
            f"violated dependency: {witness.fd!r}",
            f"tuple {witness.first_row}: {first!r}",
            f"tuple {witness.second_row}: {second!r}",
            (
                f"they agree on {' '.join(witness.fd.lhs)} but their "
                f"{witness.attribute} values conflict"
            ),
        ]
    )


def explain_chase(result: ChaseResult) -> str:
    """Narrate a chase run: every rule firing, then the outcome."""
    lines: List[str] = [result.summary()]
    for app in result.applications:
        if app.action == "substitute":
            what = "grounded a null from its partner's constant"
        elif app.action == "nec":
            what = "linked two unknowns (null equality constraint)"
        else:
            what = "found conflicting constants: poisoned to nothing"
        lines.append(
            f"  {app.fd!r} on rows {app.first_row},{app.second_row} "
            f"at {app.attribute}: {what}"
        )
    if result.substitutions:
        lines.append("forced substitutions:")
        for original, value in result.substitutions.items():
            lines.append(f"  {original!r} := {value!r}")
    for nec in result.nec_classes:
        lines.append(
            "null equality constraint: " + " := ".join(repr(n) for n in nec)
        )
    if result.has_nothing:
        lines.append(
            "the instance is NOT weakly satisfiable: some cells are "
            "inconsistent (nothing)"
        )
    else:
        lines.append("the instance is weakly satisfiable (no nothing)")
    return "\n".join(lines)
