"""Command-line interface: FD tools over CSV files.

Usage (also via ``python -m repro``)::

    repro check  --data t.csv --fds "zip -> city state" [--convention weak]
    repro chase  --data t.csv --fds "zip -> city state" [--mode extended]
    repro keys       --attrs "A B C" --fds "A -> B"
    repro closure    --attrs "A B C" --fds "A -> B; B -> C" --of "A"
    repro normalize  --attrs "A B C" --fds "A -> B; B -> C" [--method bcnf]

Data files are ordinary CSV with a header row naming the attributes; an
empty cell or a ``-`` cell is read as a fresh null.  Finite domains may be
declared with ``--domain A=a1,a2,a3`` (repeatable); attributes without a
declaration get unbounded domains.
"""

from __future__ import annotations

import argparse
import csv
import sys
from typing import Dict, List, Optional, Sequence

from .armstrong import attribute_closure, candidate_keys, minimal_cover
from .chase import MODE_BASIC, MODE_EXTENDED, chase
from .core.attributes import parse_attrs
from .core.domain import Domain
from .core.fd import FDSet
from .core.relation import Relation
from .core.schema import RelationSchema
from .core.values import null
from .errors import ReproError
from .explain import explain_chase, explain_outcome
from .normalization import bcnf_decompose, synthesize_3nf
from .testfd import CONVENTION_STRONG, CONVENTION_WEAK, check_fds

NULL_TOKENS = ("", "-", "NULL", "null")


def load_relation(
    path: str, domains: Optional[Dict[str, Domain]] = None, name: str = "R"
) -> Relation:
    """Read a CSV file into a relation; empty/``-`` cells become nulls."""
    with open(path, newline="") as handle:
        reader = csv.reader(handle)
        try:
            header = next(reader)
        except StopIteration:
            raise ReproError(f"{path}: empty file") from None
        schema = RelationSchema(
            name, [h.strip() for h in header], domains=domains
        )
        rows: List[List] = []
        for lineno, record in enumerate(reader, start=2):
            if not record or all(not cell.strip() for cell in record):
                continue
            if len(record) != len(schema.attributes):
                raise ReproError(
                    f"{path}:{lineno}: expected {len(schema.attributes)} "
                    f"cells, got {len(record)}"
                )
            rows.append(
                [
                    null() if cell.strip() in NULL_TOKENS else cell.strip()
                    for cell in record
                ]
            )
    return Relation(schema, rows)


def parse_domains(specs: Optional[Sequence[str]]) -> Dict[str, Domain]:
    domains: Dict[str, Domain] = {}
    for spec in specs or ():
        if "=" not in spec:
            raise ReproError(f"bad --domain {spec!r}; expected ATTR=v1,v2,...")
        attr, _, values = spec.partition("=")
        domains[attr.strip()] = Domain(
            [v.strip() for v in values.split(",") if v.strip()], name=attr
        )
    return domains


def _cmd_check(args: argparse.Namespace) -> int:
    relation = load_relation(args.data, parse_domains(args.domain))
    fds = FDSet.parse(args.fds)
    outcome = check_fds(
        relation,
        fds,
        convention=args.convention,
        ensure_minimal=(args.convention == CONVENTION_WEAK),
    )
    print(
        f"{args.convention} satisfiability of {fds!r}: "
        f"{'yes' if outcome.satisfied else 'no'}"
    )
    if not outcome.satisfied:
        print(explain_outcome(outcome, relation))
    return 0 if outcome.satisfied else 1


def _cmd_chase(args: argparse.Namespace) -> int:
    relation = load_relation(args.data, parse_domains(args.domain))
    fds = FDSet.parse(args.fds)
    result = chase(relation, fds, mode=args.mode)
    print(result.relation.to_text())
    print()
    print(explain_chase(result))
    return 1 if result.has_nothing else 0


def _cmd_keys(args: argparse.Namespace) -> int:
    fds = FDSet.parse(args.fds) if args.fds else FDSet()
    keys = candidate_keys(args.attrs, fds)
    for key in keys:
        print(" ".join(key))
    return 0


def _cmd_closure(args: argparse.Namespace) -> int:
    fds = FDSet.parse(args.fds) if args.fds else FDSet()
    closure = attribute_closure(args.of, fds)
    ordered = [a for a in parse_attrs(args.attrs) if a in closure]
    print(" ".join(ordered))
    return 0


def _cmd_normalize(args: argparse.Namespace) -> int:
    fds = FDSet.parse(args.fds) if args.fds else FDSet()
    cover = minimal_cover(fds)
    print(f"minimal cover: {cover!r}")
    if args.method == "bcnf":
        for attrs, local in bcnf_decompose(args.attrs, cover):
            print(f"{' '.join(attrs)}   [{local!r}]")
    else:
        for attrs in synthesize_3nf(args.attrs, cover):
            print(" ".join(attrs))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "functional dependencies over relations with nulls "
            "(Vassiliou, VLDB 1980)"
        ),
    )
    commands = parser.add_subparsers(dest="command", required=True)

    check = commands.add_parser("check", help="TEST-FDs satisfiability")
    check.add_argument("--data", required=True, help="CSV file with header")
    check.add_argument("--fds", required=True, help='e.g. "A -> B; B -> C"')
    check.add_argument(
        "--convention",
        choices=[CONVENTION_WEAK, CONVENTION_STRONG],
        default=CONVENTION_WEAK,
    )
    check.add_argument("--domain", action="append", metavar="ATTR=v1,v2")
    check.set_defaults(func=_cmd_check)

    chase_cmd = commands.add_parser("chase", help="NS-rule chase")
    chase_cmd.add_argument("--data", required=True)
    chase_cmd.add_argument("--fds", required=True)
    chase_cmd.add_argument(
        "--mode", choices=[MODE_BASIC, MODE_EXTENDED], default=MODE_EXTENDED
    )
    chase_cmd.add_argument("--domain", action="append", metavar="ATTR=v1,v2")
    chase_cmd.set_defaults(func=_cmd_chase)

    keys = commands.add_parser("keys", help="candidate keys")
    keys.add_argument("--attrs", required=True, help='e.g. "A B C"')
    keys.add_argument("--fds", default="")
    keys.set_defaults(func=_cmd_keys)

    closure = commands.add_parser("closure", help="attribute closure")
    closure.add_argument("--attrs", required=True)
    closure.add_argument("--fds", default="")
    closure.add_argument("--of", required=True, help="seed attributes")
    closure.set_defaults(func=_cmd_closure)

    normalize = commands.add_parser("normalize", help="BCNF / 3NF design")
    normalize.add_argument("--attrs", required=True)
    normalize.add_argument("--fds", default="")
    normalize.add_argument(
        "--method", choices=["bcnf", "3nf"], default="bcnf"
    )
    normalize.set_defaults(func=_cmd_normalize)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except (ReproError, OSError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
