"""Command-line interface: FD tools over CSV files.

Usage (also via ``python -m repro``)::

    repro check  --data t.csv --fds "zip -> city state" [--convention weak]
                 [--method auto|sortmerge|pairwise|bucket|batched]
    repro chase  --data t.csv --fds "zip -> city state" [--mode extended]
                 [--engine auto|sweep|indexed|congruence]
    repro session --data t.csv --fds "zip -> city state" --script ops.txt
    repro keys       --attrs "A B C" --fds "A -> B"
    repro closure    --attrs "A B C" --fds "A -> B; B -> C" --of "A"
    repro normalize  --attrs "A B C" --fds "A -> B; B -> C" [--method bcnf]

Data files are ordinary CSV with a header row naming the attributes; an
empty cell or a ``-`` cell is read as a fresh null.  Finite domains may be
declared with ``--domain A=a1,a2,a3`` (repeatable); attributes without a
declaration get unbounded domains.

``repro session`` drives a long-lived :class:`repro.ChaseSession` through
a script of operations (one per line, ``#`` comments; ``-`` reads the
script from stdin)::

    insert a1, b1, c1        # cells comma-separated; empty or - is a null
    update 0 B=b2, C=c9      # attribute assignments on row 0
    fill 1 C c3              # ground a null with a constant
    delete 0
    snapshot                 # push a checkpoint
    rollback                 # pop + restore the latest checkpoint
    check weak               # TEST-FDs against the maintained instance
    stats                    # print the session's op-outcome counters
    show                     # print the maintained instance
    explain                  # narrate the maintained chase

The final maintained instance is printed on exit; the exit status is 1
when it is inconsistent (contains *nothing*), 0 otherwise.  With
``--stats`` the session's op-outcome counters — how many deletes/updates
were served by in-place retirement (``retire_fast``) vs trail
rewind + replay (``trail_replay``) vs a full level rebuild
(``level_rebuild``) — are printed before the final instance.
"""

from __future__ import annotations

import argparse
import csv
import sys
from typing import Dict, List, Optional, Sequence

from .armstrong import attribute_closure, candidate_keys, minimal_cover
from .chase import (
    ENGINE_AUTO,
    ENGINE_CONGRUENCE,
    ENGINE_INDEXED,
    ENGINE_SWEEP,
    MODE_BASIC,
    MODE_EXTENDED,
    ChaseSession,
    chase,
)
from .core.attributes import parse_attrs
from .core.domain import Domain
from .core.fd import FDSet
from .core.relation import Relation
from .core.schema import RelationSchema
from .core.values import null
from .errors import ReproError
from .explain import explain_chase, explain_outcome
from .normalization import bcnf_decompose, synthesize_3nf
from .testfd import CONVENTION_STRONG, CONVENTION_WEAK, check_fds

NULL_TOKENS = ("", "-", "NULL", "null")


def load_relation(
    path: str, domains: Optional[Dict[str, Domain]] = None, name: str = "R"
) -> Relation:
    """Read a CSV file into a relation; empty/``-`` cells become nulls."""
    with open(path, newline="") as handle:
        reader = csv.reader(handle)
        try:
            header = next(reader)
        except StopIteration:
            raise ReproError(f"{path}: empty file") from None
        schema = RelationSchema(
            name, [h.strip() for h in header], domains=domains
        )
        rows: List[List] = []
        for lineno, record in enumerate(reader, start=2):
            if not record or all(not cell.strip() for cell in record):
                continue
            if len(record) != len(schema.attributes):
                raise ReproError(
                    f"{path}:{lineno}: expected {len(schema.attributes)} "
                    f"cells, got {len(record)}"
                )
            rows.append([_parse_cell(cell) for cell in record])
    return Relation(schema, rows)


def parse_domains(specs: Optional[Sequence[str]]) -> Dict[str, Domain]:
    domains: Dict[str, Domain] = {}
    for spec in specs or ():
        if "=" not in spec:
            raise ReproError(f"bad --domain {spec!r}; expected ATTR=v1,v2,...")
        attr, _, values = spec.partition("=")
        domains[attr.strip()] = Domain(
            [v.strip() for v in values.split(",") if v.strip()], name=attr
        )
    return domains


def _cmd_check(args: argparse.Namespace) -> int:
    relation = load_relation(args.data, parse_domains(args.domain))
    fds = FDSet.parse(args.fds)
    outcome = check_fds(
        relation,
        fds,
        convention=args.convention,
        method=args.method,
        ensure_minimal=(args.convention == CONVENTION_WEAK),
    )
    print(
        f"{args.convention} satisfiability of {fds!r}: "
        f"{'yes' if outcome.satisfied else 'no'}"
    )
    if not outcome.satisfied:
        print(explain_outcome(outcome, relation))
    return 0 if outcome.satisfied else 1


def _cmd_chase(args: argparse.Namespace) -> int:
    relation = load_relation(args.data, parse_domains(args.domain))
    fds = FDSet.parse(args.fds)
    result = chase(relation, fds, mode=args.mode, engine=args.engine)
    print(result.relation.to_text())
    print()
    print(explain_chase(result))
    return 1 if result.has_nothing else 0


def _parse_cell(text: str):
    """One CSV/script cell: the shared null-token rule."""
    text = text.strip()
    return null() if text in NULL_TOKENS else text


def _parse_cells(text: str) -> List:
    return [_parse_cell(cell) for cell in text.split(",")]


def _cmd_session(args: argparse.Namespace) -> int:
    fds = FDSet.parse(args.fds)
    if args.data:
        relation = load_relation(args.data, parse_domains(args.domain))
        session = ChaseSession(relation, fds)
    elif args.attrs:
        schema = RelationSchema(
            "R", args.attrs, domains=parse_domains(args.domain) or None
        )
        session = ChaseSession(schema, fds)
    else:
        raise ReproError("session needs --data or --attrs")

    if args.script == "-":
        lines = sys.stdin.read().splitlines()
    else:
        with open(args.script) as handle:
            lines = handle.read().splitlines()

    checkpoints: List = []
    status = 0
    for lineno, raw_line in enumerate(lines, start=1):
        line = raw_line.split("#", 1)[0].strip()
        if not line:
            continue
        op, _, rest = line.partition(" ")
        rest = rest.strip()
        try:
            if op == "insert":
                index = session.insert(_parse_cells(rest))
                print(f"[{lineno}] insert -> row {index}")
            elif op == "delete":
                session.delete(int(rest))
                print(f"[{lineno}] delete row {rest}")
            elif op == "update":
                index_text, _, assigns = rest.partition(" ")
                changes = {}
                for assign in assigns.split(","):
                    attr, sep, value = assign.partition("=")
                    if not sep:
                        raise ReproError(f"bad assignment {assign.strip()!r}")
                    changes[attr.strip()] = _parse_cell(value)
                session.update(int(index_text), changes)
                print(f"[{lineno}] update row {index_text} with {changes}")
            elif op == "fill":
                index_text, attr, value = rest.split(None, 2)
                session.fill(int(index_text), attr, value)
                print(f"[{lineno}] fill row {index_text}.{attr} := {value!r}")
            elif op == "snapshot":
                checkpoints.append(session.snapshot())
                print(f"[{lineno}] snapshot #{len(checkpoints)}")
            elif op == "rollback":
                if not checkpoints:
                    raise ReproError("rollback without a snapshot")
                session.rollback(checkpoints.pop())
                print(f"[{lineno}] rollback to snapshot #{len(checkpoints) + 1}")
            elif op == "check":
                convention = rest or CONVENTION_WEAK
                if convention not in (CONVENTION_WEAK, CONVENTION_STRONG):
                    raise ReproError(f"unknown convention {convention!r}")
                outcome = session.check(convention=convention)
                verdict = "satisfied" if outcome.satisfied else "violated"
                print(f"[{lineno}] check {convention}: {verdict}")
                if not outcome.satisfied:
                    print(explain_outcome(outcome, session.result().relation))
            elif op == "stats":
                print(f"[{lineno}] " + _format_stats(session))
            elif op == "show":
                print(session.result().relation.to_text())
            elif op == "explain":
                print(session.explain())
            else:
                raise ReproError(f"unknown session op {op!r}")
        except (ReproError, ValueError) as error:
            print(f"error: line {lineno}: {error}", file=sys.stderr)
            status = 2
            break
        if session.has_nothing:
            print(f"[{lineno}] state is now INCONSISTENT (nothing present)")

    print()
    if args.stats:
        print(_format_stats(session))
    print(session.result().relation.to_text())
    print()
    print(session.result().summary())
    if status:
        return status
    return 1 if session.has_nothing else 0


def _format_stats(session: ChaseSession) -> str:
    counters = ", ".join(
        f"{name}={value}" for name, value in session.stats().items()
    )
    return f"session stats: {counters}"


def _cmd_keys(args: argparse.Namespace) -> int:
    fds = FDSet.parse(args.fds) if args.fds else FDSet()
    keys = candidate_keys(args.attrs, fds)
    for key in keys:
        print(" ".join(key))
    return 0


def _cmd_closure(args: argparse.Namespace) -> int:
    fds = FDSet.parse(args.fds) if args.fds else FDSet()
    closure = attribute_closure(args.of, fds)
    ordered = [a for a in parse_attrs(args.attrs) if a in closure]
    print(" ".join(ordered))
    return 0


def _cmd_normalize(args: argparse.Namespace) -> int:
    fds = FDSet.parse(args.fds) if args.fds else FDSet()
    cover = minimal_cover(fds)
    print(f"minimal cover: {cover!r}")
    if args.method == "bcnf":
        for attrs, local in bcnf_decompose(args.attrs, cover):
            print(f"{' '.join(attrs)}   [{local!r}]")
    else:
        for attrs in synthesize_3nf(args.attrs, cover):
            print(" ".join(attrs))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "functional dependencies over relations with nulls "
            "(Vassiliou, VLDB 1980)"
        ),
    )
    commands = parser.add_subparsers(dest="command", required=True)

    check = commands.add_parser("check", help="TEST-FDs satisfiability")
    check.add_argument("--data", required=True, help="CSV file with header")
    check.add_argument("--fds", required=True, help='e.g. "A -> B; B -> C"')
    check.add_argument(
        "--convention",
        choices=[CONVENTION_WEAK, CONVENTION_STRONG],
        default=CONVENTION_WEAK,
    )
    check.add_argument(
        "--method",
        choices=["auto", "sortmerge", "pairwise", "bucket", "batched"],
        default="auto",
        help="TEST-FDs variant (auto routes by convention and shared LHSs)",
    )
    check.add_argument("--domain", action="append", metavar="ATTR=v1,v2")
    check.set_defaults(func=_cmd_check)

    chase_cmd = commands.add_parser("chase", help="NS-rule chase")
    chase_cmd.add_argument("--data", required=True)
    chase_cmd.add_argument("--fds", required=True)
    chase_cmd.add_argument(
        "--mode", choices=[MODE_BASIC, MODE_EXTENDED], default=MODE_EXTENDED
    )
    chase_cmd.add_argument(
        "--engine",
        choices=[ENGINE_AUTO, ENGINE_SWEEP, ENGINE_INDEXED, ENGINE_CONGRUENCE],
        default=ENGINE_AUTO,
        help="chase engine (indexed/congruence are extended-mode only)",
    )
    chase_cmd.add_argument("--domain", action="append", metavar="ATTR=v1,v2")
    chase_cmd.set_defaults(func=_cmd_chase)

    session = commands.add_parser(
        "session", help="drive a stateful chase session through an op script"
    )
    session.add_argument("--data", help="CSV file with the initial instance")
    session.add_argument("--attrs", help='start empty over e.g. "A B C"')
    session.add_argument("--fds", required=True)
    session.add_argument(
        "--script",
        default="-",
        help="operation script path, or - for stdin (the default)",
    )
    session.add_argument("--domain", action="append", metavar="ATTR=v1,v2")
    session.add_argument(
        "--stats",
        action="store_true",
        help="print op-outcome counters (in-place retirements vs trail "
        "replays vs level rebuilds) before the final instance",
    )
    session.set_defaults(func=_cmd_session)

    keys = commands.add_parser("keys", help="candidate keys")
    keys.add_argument("--attrs", required=True, help='e.g. "A B C"')
    keys.add_argument("--fds", default="")
    keys.set_defaults(func=_cmd_keys)

    closure = commands.add_parser("closure", help="attribute closure")
    closure.add_argument("--attrs", required=True)
    closure.add_argument("--fds", default="")
    closure.add_argument("--of", required=True, help="seed attributes")
    closure.set_defaults(func=_cmd_closure)

    normalize = commands.add_parser("normalize", help="BCNF / 3NF design")
    normalize.add_argument("--attrs", required=True)
    normalize.add_argument("--fds", default="")
    normalize.add_argument(
        "--method", choices=["bcnf", "3nf"], default="bcnf"
    )
    normalize.set_defaults(func=_cmd_normalize)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except (ReproError, OSError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
