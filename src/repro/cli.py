"""Command-line interface: FD tools over CSV files and durable databases.

Usage (also via ``python -m repro``)::

    repro check  --data t.csv --fds "zip -> city state" [--convention weak]
                 [--method auto|sortmerge|pairwise|bucket|batched]
    repro chase  --data t.csv --fds "zip -> city state" [--mode extended]
                 [--engine auto|sweep|indexed|congruence|vector] [--workers N]
    repro session --data t.csv --fds "zip -> city state" --script ops.txt
                 [--workers N]
    repro db init PATH --name R --attrs "A B C" --fds "A -> B"
    repro db ingest PATH --name R [--data t.csv] [--script ops.txt]
    repro db check PATH --name R [--convention weak]
    repro db checkpoint PATH [--name R]
    repro db recover PATH
    repro db stats PATH [--name R]
    repro serve PATH [--port 7407] [--window-ms 2] [--checkpoint-wal-ops N]
    repro keys       --attrs "A B C" --fds "A -> B"
    repro closure    --attrs "A B C" --fds "A -> B; B -> C" --of "A"
    repro normalize  --attrs "A B C" --fds "A -> B; B -> C" [--method bcnf]

Data files are ordinary CSV with a header row naming the attributes; an
empty cell or a ``-`` cell is read as a fresh null.  Finite domains may be
declared with ``--domain A=a1,a2,a3`` (repeatable); attributes without a
declaration get unbounded domains.

``repro session`` drives a long-lived :class:`repro.ChaseSession` — and
``repro db ingest`` a durable :class:`repro.Database` relation — through
the same op-record vocabulary (one op per line, ``#`` comments; ``-``
reads the script from stdin)::

    insert a1, b1, c1        # cells comma-separated; empty or - is a null
    update 0 B=b2, C=c9      # attribute assignments on row 0
    replace 0 a9, b9, c9     # swap the whole tuple at row 0
    fill 1 C c3              # ground a null with a constant
    delete 0
    adopt                    # commit forced substitutions into the rows
    snapshot                 # push a checkpoint
    rollback                 # pop + restore the latest checkpoint
    checkpoint               # db scripts only: snapshot rows, truncate log
    check weak               # TEST-FDs against the maintained instance
    stats                    # print the session's op-outcome counters
    show                     # print the maintained instance
    explain                  # narrate the maintained chase

A failing op aborts the script with its line number and op text (exit
status 2).  Otherwise the final maintained instance is printed on exit;
the exit status is 1 when it is inconsistent (contains *nothing*), 0
otherwise.  With ``--stats`` the session's op-outcome counters — how many
deletes/updates were served by in-place retirement (``retire_fast``) vs
trail rewind + replay (``trail_replay``) vs a full level rebuild
(``level_rebuild``) — are printed before the final instance.

The ``repro db`` family operates on a durable database directory: every
ingest op is journalled to a write-ahead log *before* it is applied, so a
crash at any instant (including mid-append) recovers to the last
completed op on the next ``repro db`` invocation — ``repro db recover``
makes the replay explicit and verifies the recovered fixpoint against a
from-scratch chase of the recovered rows.
"""

from __future__ import annotations

import argparse
import csv
import sys
from typing import Dict, List, Optional, Sequence

from .armstrong import attribute_closure, candidate_keys, minimal_cover
from .chase import (
    ENGINE_AUTO,
    ENGINE_CONGRUENCE,
    ENGINE_INDEXED,
    ENGINE_SWEEP,
    ENGINE_VECTOR,
    MODE_BASIC,
    MODE_EXTENDED,
    ChaseSession,
    chase,
)
from .core.attributes import parse_attrs
from .core.domain import Domain
from .core.fd import FDSet
from .core.relation import Relation
from .core.schema import RelationSchema
from .core.values import null
from .db import SYNC_FSYNC, SYNC_MODES, Database
from .errors import ReproError, ScriptError
from .explain import explain_chase, explain_outcome
from .normalization import bcnf_decompose, synthesize_3nf
from .opschema import NULL_TOKENS, SCRIPT_OPS
from .testfd import CONVENTION_STRONG, CONVENTION_WEAK, check_fds


def load_relation(
    path: str, domains: Optional[Dict[str, Domain]] = None, name: str = "R"
) -> Relation:
    """Read a CSV file into a relation; empty/``-`` cells become nulls."""
    with open(path, newline="") as handle:
        reader = csv.reader(handle)
        try:
            header = next(reader)
        except StopIteration:
            raise ReproError(f"{path}: empty file") from None
        schema = RelationSchema(
            name, [h.strip() for h in header], domains=domains
        )
        rows: List[List] = []
        for lineno, record in enumerate(reader, start=2):
            if not record or all(not cell.strip() for cell in record):
                continue
            if len(record) != len(schema.attributes):
                raise ReproError(
                    f"{path}:{lineno}: expected {len(schema.attributes)} "
                    f"cells, got {len(record)}"
                )
            rows.append([_parse_cell(cell) for cell in record])
    return Relation(schema, rows)


def parse_domains(specs: Optional[Sequence[str]]) -> Dict[str, Domain]:
    domains: Dict[str, Domain] = {}
    for spec in specs or ():
        if "=" not in spec:
            raise ReproError(f"bad --domain {spec!r}; expected ATTR=v1,v2,...")
        attr, _, values = spec.partition("=")
        domains[attr.strip()] = Domain(
            [v.strip() for v in values.split(",") if v.strip()], name=attr
        )
    return domains


def _cmd_check(args: argparse.Namespace) -> int:
    relation = load_relation(args.data, parse_domains(args.domain))
    fds = FDSet.parse(args.fds)
    outcome = check_fds(
        relation,
        fds,
        convention=args.convention,
        method=args.method,
        ensure_minimal=(args.convention == CONVENTION_WEAK),
    )
    print(
        f"{args.convention} satisfiability of {fds!r}: "
        f"{'yes' if outcome.satisfied else 'no'}"
    )
    if not outcome.satisfied:
        print(explain_outcome(outcome, relation))
    return 0 if outcome.satisfied else 1


def _cmd_chase(args: argparse.Namespace) -> int:
    relation = load_relation(args.data, parse_domains(args.domain))
    fds = FDSet.parse(args.fds)
    if args.workers is not None and args.engine != ENGINE_AUTO:
        raise ReproError(
            "--workers selects the sharded parallel executor; drop --engine"
        )
    result = chase(
        relation, fds, mode=args.mode, engine=args.engine, workers=args.workers
    )
    print(result.relation.to_text())
    print()
    print(explain_chase(result))
    return 1 if result.has_nothing else 0


def _parse_cell(text: str):
    """One CSV/script cell: the shared null-token rule."""
    text = text.strip()
    return null() if text in NULL_TOKENS else text


def _parse_cells(text: str) -> List:
    return [_parse_cell(cell) for cell in text.split(",")]


class _SessionTarget:
    """Adapt a bare :class:`ChaseSession` to the script-runner surface.

    The runner drives plain sessions and durable
    :class:`repro.db.ManagedRelation` handles through one interface: the
    managed relation journals its own snapshot stack, this adapter keeps
    an in-memory one with the same depth-returning contract.
    """

    def __init__(self, session: ChaseSession) -> None:
        self.session = session
        self._snapshots: List = []

    def __getattr__(self, name):
        return getattr(self.session, name)

    def __len__(self) -> int:
        return len(self.session)

    @property
    def has_nothing(self) -> bool:
        return self.session.has_nothing

    def snapshot(self) -> int:
        self._snapshots.append(self.session.snapshot())
        return len(self._snapshots)

    def rollback(self) -> int:
        if not self._snapshots:
            raise ReproError("rollback without a snapshot")
        self.session.rollback(self._snapshots.pop())
        return len(self._snapshots) + 1

    def discard_snapshots(self) -> int:
        discarded = len(self._snapshots)
        self._snapshots.clear()
        return discarded


def run_script(target, lines: Sequence[str]) -> None:
    """Execute an op script against a session-shaped target.

    ``target`` is a :class:`_SessionTarget` or a durable
    :class:`repro.db.ManagedRelation` — the one op-record vocabulary the
    whole system shares (the ops are exactly the records the write-ahead
    log journals).  A failing op raises :class:`~repro.errors.ScriptError`
    carrying the 1-based line number and the op text as written.
    """
    for lineno, raw_line in enumerate(lines, start=1):
        line = raw_line.split("#", 1)[0].strip()
        if not line:
            continue
        op, _, rest = line.partition(" ")
        rest = rest.strip()
        try:
            if op == "insert":
                index = target.insert(_parse_cells(rest))
                print(f"[{lineno}] insert -> row {index}")
            elif op == "delete":
                target.delete(int(rest))
                print(f"[{lineno}] delete row {rest}")
            elif op == "update":
                index_text, _, assigns = rest.partition(" ")
                changes = {}
                for assign in assigns.split(","):
                    attr, sep, value = assign.partition("=")
                    if not sep:
                        raise ReproError(f"bad assignment {assign.strip()!r}")
                    changes[attr.strip()] = _parse_cell(value)
                target.update(int(index_text), changes)
                print(f"[{lineno}] update row {index_text} with {changes}")
            elif op == "replace":
                index_text, _, cells = rest.partition(" ")
                target.replace(int(index_text), _parse_cells(cells))
                print(f"[{lineno}] replace row {index_text}")
            elif op == "fill":
                index_text, attr, value = rest.split(None, 2)
                target.fill(int(index_text), attr, value)
                print(f"[{lineno}] fill row {index_text}.{attr} := {value!r}")
            elif op == "adopt":
                committed = target.adopt()
                print(f"[{lineno}] adopt: {len(committed)} substitution(s) committed")
            elif op == "snapshot":
                depth = target.snapshot()
                print(f"[{lineno}] snapshot #{depth}")
            elif op == "rollback":
                depth = target.rollback()
                print(f"[{lineno}] rollback to snapshot #{depth}")
            elif op == "checkpoint":
                if not hasattr(target, "checkpoint"):
                    raise ReproError(
                        "checkpoint is a durable-database op; use repro db"
                    )
                absorbed = target.checkpoint()
                print(f"[{lineno}] checkpoint: {absorbed} op(s) absorbed")
            elif op == "check":
                convention = rest or CONVENTION_WEAK
                if convention not in (CONVENTION_WEAK, CONVENTION_STRONG):
                    raise ReproError(f"unknown convention {convention!r}")
                outcome = target.check(convention=convention)
                verdict = "satisfied" if outcome.satisfied else "violated"
                print(f"[{lineno}] check {convention}: {verdict}")
                if not outcome.satisfied:
                    print(explain_outcome(outcome, target.result().relation))
            elif op == "stats":
                print(f"[{lineno}] " + _format_stats(target))
            elif op == "show":
                print(target.result().relation.to_text())
            elif op == "explain":
                print(target.explain())
            else:
                raise ReproError(
                    f"unknown session op {op!r} "
                    f"(ops: {', '.join(SCRIPT_OPS)})"
                )
        except ScriptError:
            raise
        except (ReproError, ValueError) as error:
            raise ScriptError(lineno, line, error) from error
        if target.has_nothing:
            print(f"[{lineno}] state is now INCONSISTENT (nothing present)")


def _read_script(path: str) -> List[str]:
    if path == "-":
        return sys.stdin.read().splitlines()
    with open(path) as handle:
        return handle.read().splitlines()


def _finish_script(target, status: int, show_stats: bool) -> int:
    """The common epilogue: counters (optional), instance, summary, exit."""
    print()
    if show_stats:
        print(_format_stats(target))
    print(target.result().relation.to_text())
    print()
    print(target.result().summary())
    if status:
        return status
    return 1 if target.has_nothing else 0


def _cmd_session(args: argparse.Namespace) -> int:
    fds = FDSet.parse(args.fds)
    if args.data:
        relation = load_relation(args.data, parse_domains(args.domain))
        session = ChaseSession(relation, fds, workers=args.workers)
    elif args.attrs:
        schema = RelationSchema(
            "R", args.attrs, domains=parse_domains(args.domain) or None
        )
        session = ChaseSession(schema, fds, workers=args.workers)
    else:
        raise ReproError("session needs --data or --attrs")

    target = _SessionTarget(session)
    status = 0
    try:
        run_script(target, _read_script(args.script))
    except ScriptError as error:
        print(f"error: {error.diagnostic().render()}", file=sys.stderr)
        status = 2
    return _finish_script(target, status, args.stats)


def _lint_query_catalog(args: argparse.Namespace):
    """The relation catalog (and instance stats) ``lint --query`` checks
    against.

    ``--data`` contributes more than a scheme: the loaded instance's
    null counts and verified value pools power the plan linter's
    null-flow and grounding-space findings.
    """
    from .query.optimize import relation_stats

    domains = parse_domains(args.domain) or {}
    catalog: Dict[str, RelationSchema] = {}
    stats = {}
    for spec in args.rel or []:
        name, _, attrs = spec.partition("=")
        if not name or not attrs.strip():
            raise ReproError(f'--rel needs NAME="A B C", got {spec!r}')
        schema = RelationSchema(name, attrs)
        scoped = {a: d for a, d in domains.items() if a in schema.attributes}
        catalog[name] = RelationSchema(name, attrs, domains=scoped or None)
    if args.data:
        relation = load_relation(args.data, domains)
        catalog.setdefault(relation.schema.name, relation.schema)
        stats[relation.schema.name] = relation_stats(relation)
    elif args.attrs:
        scoped = {
            a: d
            for a, d in domains.items()
            if a in RelationSchema("R", args.attrs).attributes
        }
        catalog.setdefault(
            "R", RelationSchema("R", args.attrs, domains=scoped or None)
        )
    if not catalog:
        raise ReproError("lint --query needs --rel, --data or --attrs")
    return catalog, (stats or None)


def _cmd_lint(args: argparse.Namespace) -> int:
    from .analysis import lint_query_script, lint_script, render_report

    if args.query:
        catalog, stats = _lint_query_catalog(args)
        diagnostics = lint_query_script(
            catalog, _read_script(args.script), stats=stats
        )
    else:
        if not args.fds:
            raise ReproError("lint needs --fds (unless linting --query)")
        fds = FDSet.parse(args.fds)
        rows = None
        if args.data:
            relation = load_relation(args.data, parse_domains(args.domain))
            schema, rows = relation.schema, relation.rows
        elif args.attrs:
            schema = RelationSchema(
                "R", args.attrs, domains=parse_domains(args.domain) or None
            )
        else:
            raise ReproError("lint needs --data or --attrs")
        diagnostics = lint_script(
            schema, fds, _read_script(args.script), rows=rows, durable=args.db
        )
    if not diagnostics:
        print("clean: no diagnostics")
        return 0
    print(render_report(diagnostics))
    errors = sum(1 for d in diagnostics if d.severity == "error")
    warnings = len(diagnostics) - errors
    print(f"{errors} error(s), {warnings} warning(s)")
    return 2 if errors else 1


def _cmd_query(args: argparse.Namespace) -> int:
    from .query.evaluate import Evaluator
    from .query.parser import parse_query
    from .query.repl import QueryRepl, render_result, run_repl

    env: Dict[str, Relation] = {}
    fds: Dict[str, tuple] = {}
    db: Optional[Database] = None
    try:
        if args.db:
            db = Database.open(args.db, create=False)
            for managed in db:
                # queries run over the maintained fixpoint, the same
                # instance every other durable read surface answers from
                env[managed.name] = managed.result().relation
                fds[managed.name] = tuple(managed.session.fds)
        for spec in args.csv or []:
            name, _, path = spec.partition("=")
            if not name or not path:
                raise ReproError(f"--csv needs NAME=PATH, got {spec!r}")
            env[name] = load_relation(
                path, parse_domains(args.domain), name=name
            )
        if not env:
            raise ReproError("query needs a source: --db DIR and/or --csv")
        optimize = not args.no_optimize
        if args.expr:
            evaluator = Evaluator(env, fds=fds or None, optimize=optimize)
            node = parse_query(args.expr)
            if args.explain:
                print(evaluator.explain(node, mode=args.mode))
                return 0
            result = evaluator.run(node, mode=args.mode)
            print(render_result(result))
            return 0
        if args.explain:
            raise ReproError(
                "--explain needs -e EXPR (in the shell, use `explain Q`)"
            )
        if args.script:
            repl = QueryRepl(env, mode=args.mode, fds=fds or None,
                             optimize=optimize)
            failed = False
            for line in _read_script(args.script):
                block = repl.execute(line)
                if block:
                    print(block)
                    failed = failed or block.startswith(
                        ("error:", "domain error:")
                    )
            return 1 if failed else 0
        if args.repl or sys.stdin.isatty():
            print("repro query shell — .help for help, .quit to leave")
            run_repl(env, sys.stdin, sys.stdout, mode=args.mode,
                     prompt="query> ", fds=fds or None, optimize=optimize)
            print()
            return 0
        raise ReproError("query needs -e EXPR, --script FILE, or --repl")
    finally:
        if db is not None:
            db.close()


def _format_stats(target) -> str:
    counters = ", ".join(
        f"{name}={value}" for name, value in target.stats().items()
    )
    return f"session stats: {counters}"


# ---------------------------------------------------------------------------
# the durable-database commands (repro db ...)
# ---------------------------------------------------------------------------


def _open_db(args: argparse.Namespace, create: bool = False) -> Database:
    # only `db init` materializes a missing directory; every other
    # subcommand treats a path with no database as the error it is
    return Database.open(
        args.path, sync=args.sync, create=create, workers=args.workers
    )


def _cmd_db_init(args: argparse.Namespace) -> int:
    with _open_db(args, create=True) as db:
        fds = FDSet.parse(args.fds) if args.fds else FDSet()
        db.create(
            args.name,
            args.attrs,
            fds,
            domains=parse_domains(args.domain) or None,
        )
        print(
            f"created relation {args.name!r} ({args.attrs}) with "
            f"{len(list(fds))} FD(s) in {db.path}"
        )
    return 0


def _cmd_db_ingest(args: argparse.Namespace) -> int:
    with _open_db(args) as db:
        relation = db.relation(args.name)
        if args.data:
            loaded = load_relation(args.data, parse_domains(args.domain)).rows
            for row in loaded:
                relation.insert(row)
            print(f"ingested {args.data}: {len(loaded)} row(s) journalled")
        status = 0
        if args.script:
            try:
                run_script(relation, _read_script(args.script))
            except ScriptError as error:
                print(f"error: {error.diagnostic().render()}", file=sys.stderr)
                status = 2
        return _finish_script(relation, status, args.stats)


def _cmd_db_check(args: argparse.Namespace) -> int:
    with _open_db(args) as db:
        relation = db.relation(args.name)
        outcome = relation.check(convention=args.convention, method=args.method)
        print(
            f"{args.convention} satisfiability of {args.name!r}: "
            f"{'yes' if outcome.satisfied else 'no'}"
        )
        if not outcome.satisfied:
            print(explain_outcome(outcome, relation.result().relation))
        return 0 if outcome.satisfied else 1


def _cmd_db_checkpoint(args: argparse.Namespace) -> int:
    with _open_db(args) as db:
        for name, absorbed in db.checkpoint(args.name).items():
            print(f"checkpointed {name!r}: {absorbed} op(s) absorbed into the snapshot")
    return 0


def _cmd_db_recover(args: argparse.Namespace) -> int:
    with _open_db(args) as db:
        failures = 0
        for relation in db:
            info = relation.recovery_info
            verified = relation.verify()
            failures += 0 if verified else 1
            torn = ", torn tail dropped" if info["torn_tail_dropped"] else ""
            print(
                f"{relation.name}: {info['rows']} row(s) = checkpoint seq "
                f"{info['checkpoint_seq']} + {info['replayed']} replayed "
                f"op(s){torn}; fixpoint verified: {verified}"
            )
        if not len(db):
            print(f"no relations in {db.path}")
    return 1 if failures else 0


def _cmd_db_stats(args: argparse.Namespace) -> int:
    with _open_db(args) as db:
        stats = db.stats()
        if args.name:
            stats = {args.name: db.relation(args.name).stats()}
        for name, counters in stats.items():
            rendered = ", ".join(f"{key}={value}" for key, value in counters.items())
            print(f"{name}: {rendered}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from .server import ReproServer  # local: keeps plain CLI startup light

    async def run() -> None:
        server = ReproServer(
            args.path,
            sync=args.sync,
            create=False,
            workers=args.workers,
            window_s=args.window_ms / 1000.0,
            max_batch=args.max_batch,
            checkpoint_wal_ops=args.checkpoint_wal_ops,
            checkpoint_interval_s=args.checkpoint_interval,
        )
        await server.start()
        recovered = ", ".join(
            f"{rel.name}({len(rel)} rows, seq {rel.seq})" for rel in server.db
        )
        host, port = await server.listen(args.host, args.port)
        print(f"serving {server.path} on {host}:{port}")
        print(f"relations: {recovered or 'none'}")
        print(
            f"group commit: window {args.window_ms}ms, max batch "
            f"{args.max_batch}; sync={args.sync}"
        )
        try:
            await asyncio.Event().wait()  # until interrupted
        finally:
            await asyncio.shield(server.stop())

    try:
        asyncio.run(run())
    except KeyboardInterrupt:
        # stop() ran in the finally above: queued ops were applied and
        # made durable before the handles closed
        print("\nshut down cleanly")
    return 0


def _cmd_keys(args: argparse.Namespace) -> int:
    fds = FDSet.parse(args.fds) if args.fds else FDSet()
    keys = candidate_keys(args.attrs, fds)
    for key in keys:
        print(" ".join(key))
    return 0


def _cmd_closure(args: argparse.Namespace) -> int:
    fds = FDSet.parse(args.fds) if args.fds else FDSet()
    closure = attribute_closure(args.of, fds)
    ordered = [a for a in parse_attrs(args.attrs) if a in closure]
    print(" ".join(ordered))
    return 0


def _cmd_normalize(args: argparse.Namespace) -> int:
    fds = FDSet.parse(args.fds) if args.fds else FDSet()
    cover = minimal_cover(fds)
    print(f"minimal cover: {cover!r}")
    if args.method == "bcnf":
        for attrs, local in bcnf_decompose(args.attrs, cover):
            print(f"{' '.join(attrs)}   [{local!r}]")
    else:
        for attrs in synthesize_3nf(args.attrs, cover):
            print(" ".join(attrs))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "functional dependencies over relations with nulls "
            "(Vassiliou, VLDB 1980)"
        ),
    )
    commands = parser.add_subparsers(dest="command", required=True)

    check = commands.add_parser("check", help="TEST-FDs satisfiability")
    check.add_argument("--data", required=True, help="CSV file with header")
    check.add_argument("--fds", required=True, help='e.g. "A -> B; B -> C"')
    check.add_argument(
        "--convention",
        choices=[CONVENTION_WEAK, CONVENTION_STRONG],
        default=CONVENTION_WEAK,
    )
    check.add_argument(
        "--method",
        choices=["auto", "sortmerge", "pairwise", "bucket", "batched"],
        default="auto",
        help="TEST-FDs variant (auto routes by convention and shared LHSs)",
    )
    check.add_argument("--domain", action="append", metavar="ATTR=v1,v2")
    check.set_defaults(func=_cmd_check)

    chase_cmd = commands.add_parser("chase", help="NS-rule chase")
    chase_cmd.add_argument("--data", required=True)
    chase_cmd.add_argument("--fds", required=True)
    chase_cmd.add_argument(
        "--mode", choices=[MODE_BASIC, MODE_EXTENDED], default=MODE_EXTENDED
    )
    chase_cmd.add_argument(
        "--engine",
        choices=[
            ENGINE_AUTO,
            ENGINE_SWEEP,
            ENGINE_INDEXED,
            ENGINE_CONGRUENCE,
            ENGINE_VECTOR,
        ],
        default=ENGINE_AUTO,
        help="chase engine (indexed/congruence/vector are extended-mode only)",
    )
    chase_cmd.add_argument(
        "--workers",
        type=int,
        metavar="N",
        help="sharded parallel chase across N processes (extended mode; "
        "mutually exclusive with --engine)",
    )
    chase_cmd.add_argument("--domain", action="append", metavar="ATTR=v1,v2")
    chase_cmd.set_defaults(func=_cmd_chase)

    session = commands.add_parser(
        "session", help="drive a stateful chase session through an op script"
    )
    session.add_argument("--data", help="CSV file with the initial instance")
    session.add_argument("--attrs", help='start empty over e.g. "A B C"')
    session.add_argument("--fds", required=True)
    session.add_argument(
        "--script",
        default="-",
        help="operation script path, or - for stdin (the default)",
    )
    session.add_argument("--domain", action="append", metavar="ATTR=v1,v2")
    session.add_argument(
        "--stats",
        action="store_true",
        help="print op-outcome counters (in-place retirements vs trail "
        "replays vs level rebuilds) before the final instance",
    )
    session.add_argument(
        "--workers",
        type=int,
        metavar="N",
        help="sharded parallel verification re-chases across N processes",
    )
    session.set_defaults(func=_cmd_session)

    lint = commands.add_parser(
        "lint",
        help="statically analyze an op script without executing it "
        "(exit 0 clean / 1 warnings / 2 errors)",
    )
    lint.add_argument("--data", help="CSV file with the initial instance")
    lint.add_argument("--attrs", help='start empty over e.g. "A B C"')
    lint.add_argument("--fds", help="FD set (required unless --query)")
    lint.add_argument(
        "--query",
        action="store_true",
        help="lint a query script (repro query --script syntax) instead "
        "of an op script",
    )
    lint.add_argument(
        "--rel",
        action="append",
        metavar='NAME="A B C"',
        help="catalog relation for --query lint (repeatable)",
    )
    lint.add_argument(
        "--script",
        default="-",
        help="operation script path, or - for stdin (the default)",
    )
    lint.add_argument("--domain", action="append", metavar="ATTR=v1,v2")
    lint.add_argument(
        "--db",
        action="store_true",
        help="lint with repro db ingest semantics (checkpoint is legal)",
    )
    lint.set_defaults(func=_cmd_lint)

    query = commands.add_parser(
        "query",
        help="relational-algebra queries with certain/maybe answer sets",
    )
    query.add_argument(
        "--db",
        help="durable database directory (queries the maintained fixpoints)",
    )
    query.add_argument(
        "--csv",
        action="append",
        metavar="NAME=PATH",
        help="ad-hoc relation loaded from CSV (repeatable)",
    )
    query.add_argument(
        "--domain",
        action="append",
        metavar="ATTR=v1,v2",
        help="finite domain for CSV columns (repeatable)",
    )
    query.add_argument(
        "-e",
        "--expr",
        help="evaluate one query expression and exit",
    )
    query.add_argument(
        "--script",
        help="run query statements from a file, or - for stdin",
    )
    query.add_argument(
        "--repl",
        action="store_true",
        help="interactive shell (the default on a terminal)",
    )
    query.add_argument(
        "--mode",
        choices=("least", "kleene"),
        default="least",
        help="condition evaluation: exact least-extension grounding "
        "(default) or linear Kleene",
    )
    query.add_argument(
        "--explain",
        action="store_true",
        help="with -e: print the optimized plan (inferred keys, join "
        "strategies, fired rewrites) instead of evaluating",
    )
    query.add_argument(
        "--no-optimize",
        action="store_true",
        help="evaluate the query tree exactly as written (no rewrites, "
        "nested-loop joins)",
    )
    query.set_defaults(func=_cmd_query)

    db = commands.add_parser(
        "db", help="durable multi-relation databases (write-ahead op log)"
    )
    db_commands = db.add_subparsers(dest="db_command", required=True)

    def _db_parser(name: str, help_text: str, with_name: bool = False):
        sub = db_commands.add_parser(name, help=help_text)
        sub.add_argument("path", help="database directory")
        sub.add_argument(
            "--sync",
            choices=list(SYNC_MODES),
            default=SYNC_FSYNC,
            help="append durability: fsync (default), flush, or none",
        )
        sub.add_argument(
            "--workers",
            type=int,
            metavar="N",
            help="sharded parallel verification re-chases across N processes",
        )
        if with_name:
            sub.add_argument("--name", required=True, help="relation name")
        return sub

    db_init = _db_parser("init", "create a relation in a database", with_name=True)
    db_init.add_argument("--attrs", required=True, help='e.g. "A B C"')
    db_init.add_argument("--fds", default="", help='e.g. "A -> B; B -> C"')
    db_init.add_argument("--domain", action="append", metavar="ATTR=v1,v2")
    db_init.set_defaults(func=_cmd_db_init)

    db_ingest = _db_parser(
        "ingest", "journal ops into a relation (CSV rows and/or an op script)",
        with_name=True,
    )
    db_ingest.add_argument("--data", help="CSV file whose rows are inserted")
    db_ingest.add_argument(
        "--script", help="op script path, or - for stdin (same grammar as session)"
    )
    db_ingest.add_argument("--domain", action="append", metavar="ATTR=v1,v2")
    db_ingest.add_argument(
        "--stats", action="store_true",
        help="print op-outcome + durability counters before the final instance",
    )
    db_ingest.set_defaults(func=_cmd_db_ingest)

    db_check = _db_parser(
        "check", "TEST-FDs against a maintained relation", with_name=True
    )
    db_check.add_argument(
        "--convention",
        choices=[CONVENTION_WEAK, CONVENTION_STRONG],
        default=CONVENTION_WEAK,
    )
    db_check.add_argument(
        "--method",
        choices=["auto", "sortmerge", "pairwise", "bucket", "batched"],
        default="auto",
    )
    db_check.set_defaults(func=_cmd_db_check)

    db_checkpoint = _db_parser(
        "checkpoint", "snapshot rows + null identity; truncate the op log"
    )
    db_checkpoint.add_argument("--name", help="one relation (default: all)")
    db_checkpoint.set_defaults(func=_cmd_db_checkpoint)

    db_recover = _db_parser(
        "recover", "replay the log tail and verify every recovered fixpoint"
    )
    db_recover.set_defaults(func=_cmd_db_recover)

    db_stats = _db_parser("stats", "row/op/WAL counters per relation")
    db_stats.add_argument("--name", help="one relation (default: all)")
    db_stats.set_defaults(func=_cmd_db_stats)

    serve = commands.add_parser(
        "serve",
        help="serve a database to concurrent clients (group-commit WAL, "
        "snapshot-isolated reads)",
    )
    serve.add_argument("path", help="database directory (must exist: repro db init)")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=7407, help="TCP port (0 picks a free one)"
    )
    serve.add_argument(
        "--sync",
        choices=list(SYNC_MODES),
        default=SYNC_FSYNC,
        help="batch durability: fsync (default), flush, or none",
    )
    serve.add_argument(
        "--window-ms",
        type=float,
        default=0.0,
        metavar="MS",
        help="group-commit latch window: wait this long for more of a "
        "burst before syncing (default 0: one event-loop sweep)",
    )
    serve.add_argument(
        "--max-batch",
        type=int,
        default=512,
        metavar="N",
        help="max op records per WAL batch append (default 512)",
    )
    serve.add_argument(
        "--checkpoint-wal-ops",
        type=int,
        metavar="N",
        help="auto-checkpoint a relation once its WAL tail holds N ops",
    )
    serve.add_argument(
        "--checkpoint-interval",
        type=float,
        metavar="SECONDS",
        help="auto-checkpoint on this wall-clock cadence while ops arrive",
    )
    serve.add_argument(
        "--workers",
        type=int,
        metavar="N",
        help="sharded parallel verification re-chases across N processes",
    )
    serve.set_defaults(func=_cmd_serve)

    keys = commands.add_parser("keys", help="candidate keys")
    keys.add_argument("--attrs", required=True, help='e.g. "A B C"')
    keys.add_argument("--fds", default="")
    keys.set_defaults(func=_cmd_keys)

    closure = commands.add_parser("closure", help="attribute closure")
    closure.add_argument("--attrs", required=True)
    closure.add_argument("--fds", default="")
    closure.add_argument("--of", required=True, help="seed attributes")
    closure.set_defaults(func=_cmd_closure)

    normalize = commands.add_parser("normalize", help="BCNF / 3NF design")
    normalize.add_argument("--attrs", required=True)
    normalize.add_argument("--fds", default="")
    normalize.add_argument(
        "--method", choices=["bcnf", "3nf"], default="bcnf"
    )
    normalize.set_defaults(func=_cmd_normalize)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except (ReproError, OSError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
