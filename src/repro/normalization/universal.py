"""Universal relation instances with nulls (sections 1 and 7).

The paper's closing argument: the *practical* attack on the universal
relation assumption — "it is not realistic to assume that a universal
relation instance will have all rows filled with values" — is answered by
nulls: pad the gaps, and ask for the dependencies to be only *weakly*
satisfied.  This module builds exactly that object:

* :func:`universal_instance` — the outer-union of component instances,
  with a fresh null per missing cell;
* :func:`weak_universal_check` — the weakened universal relation
  assumption: the padded instance weakly satisfies ``F`` (decided by the
  chase, Theorem 4(b));
* :func:`decompose_instance` / :func:`natural_join` — the classical
  round-trip operators used by the examples and benches.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..chase.minimal import weakly_satisfiable
from ..core.attributes import AttrsInput, parse_attrs
from ..core.fd import FDInput
from ..core.relation import Relation
from ..core.schema import RelationSchema
from ..core.values import is_null, null
from ..errors import NullsNotAllowedError, SchemaError


def universal_instance(
    schema: RelationSchema, components: Iterable[Relation]
) -> Relation:
    """Outer-union the component instances into one universal instance.

    Every component row becomes a universal row with a fresh null in each
    attribute the component lacks — the "gaps ... filled with some special
    values" of the introduction.
    """
    rows: List[List] = []
    for component in components:
        for attr in component.schema.attributes:
            if attr not in schema:
                raise SchemaError(
                    f"component attribute {attr!r} not in universal scheme"
                )
        for row in component.rows:
            values = []
            mapping = row.as_dict()
            for attr in schema.attributes:
                values.append(mapping.get(attr, None))
            rows.append([null() if v is None else v for v in values])
    return Relation(schema, rows)


def weak_universal_check(
    schema: RelationSchema,
    components: Iterable[Relation],
    fds: Iterable[FDInput],
) -> Tuple[bool, Relation]:
    """The weakened universal relation assumption, decided.

    Returns ``(weakly_satisfiable, padded_instance)``: whether some
    completion of the padded universal instance satisfies every FD.
    """
    padded = universal_instance(schema, components)
    return weakly_satisfiable(padded, list(fds)), padded


def decompose_instance(
    relation: Relation, components: Sequence[AttrsInput]
) -> List[Relation]:
    """Project an instance onto each component scheme (with dedup)."""
    return [relation.project(component) for component in components]


def natural_join(first: Relation, second: Relation) -> Relation:
    """Classical natural join (total join columns required).

    Join attributes with nulls have no classical equality semantics; the
    paper's whole point is to *avoid* needing this operator on incomplete
    instances (use :func:`universal_instance` + the chase instead), so the
    operator refuses nulls on the join attributes rather than inventing a
    semantics.
    """
    shared = [
        attr
        for attr in first.schema.attributes
        if attr in second.schema.attributes
    ]
    for relation in (first, second):
        if any(is_null(row[attr]) for row in relation.rows for attr in shared):
            raise NullsNotAllowedError(
                "natural join is undefined on null join attributes"
            )
    attrs = list(first.schema.attributes) + [
        a for a in second.schema.attributes if a not in first.schema.attributes
    ]
    schema = RelationSchema(
        f"{first.schema.name}⋈{second.schema.name}",
        attrs,
        domains={
            a: (
                first.schema.domain(a)
                if a in first.schema
                else second.schema.domain(a)
            )
            for a in attrs
        },
    )
    index: Dict[Tuple, List] = {}
    for row in second.rows:
        index.setdefault(row.project(shared), []).append(row)
    rows: List[List] = []
    for row in first.rows:
        for match in index.get(row.project(shared), []):
            merged = row.as_dict()
            merged.update(
                {
                    a: match[a]
                    for a in second.schema.attributes
                    if a not in first.schema
                }
            )
            rows.append([merged[a] for a in attrs])
    return Relation(schema, rows).distinct()


def join_all(relations: Sequence[Relation]) -> Relation:
    """Left-fold natural join over a list of instances."""
    if not relations:
        raise SchemaError("cannot join zero relations")
    result = relations[0]
    for relation in relations[1:]:
        result = natural_join(result, relation)
    return result
