"""BCNF decomposition and normal-form predicates.

Theorem 1 is what licenses running this machinery over schemas whose
instances will contain nulls: the implication structure of FDs (hence key
computation, hence the normal forms) is unchanged under strong
satisfiability with nulls.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Tuple

from ..armstrong.closure import attribute_closure_linear
from ..armstrong.keys import candidate_keys, is_superkey, prime_attributes
from ..core.attributes import AttrsInput, parse_attrs
from ..core.fd import FD, FDInput, FDSet, as_fd
from .projection import project_fds


def bcnf_violations(
    attributes: AttrsInput, fds: Iterable[FDInput]
) -> List[FD]:
    """Nontrivial FDs (over the scheme) whose determinant is not a superkey.

    Checks the *given* FDs, which suffices for the is-in-BCNF decision when
    ``fds`` is (equivalent to) the projection onto the scheme — checking
    every implied FD is equivalent because a violating implied FD's
    determinant closure is witnessed by some given FD's firing.
    """
    attrs = parse_attrs(attributes)
    fd_list = [as_fd(f) for f in fds]
    out: List[FD] = []
    for fd in fd_list:
        reduced = fd.normalized()
        if reduced.is_trivial():
            continue
        if not set(reduced.attributes) <= set(attrs):
            continue
        if not is_superkey(attrs, reduced.lhs, fd_list):
            out.append(reduced)
    return out


def is_bcnf(attributes: AttrsInput, fds: Iterable[FDInput]) -> bool:
    """Every nontrivial FD has a superkey determinant."""
    return not bcnf_violations(attributes, fds)


def is_3nf(attributes: AttrsInput, fds: Iterable[FDInput]) -> bool:
    """Every nontrivial FD has a superkey determinant or prime RHS."""
    attrs = parse_attrs(attributes)
    fd_list = [as_fd(f) for f in fds]
    prime = prime_attributes(attrs, fd_list)
    for fd in bcnf_violations(attrs, fd_list):
        if not set(fd.rhs) <= prime:
            return False
    return True


def bcnf_decompose(
    attributes: AttrsInput,
    fds: Iterable[FDInput],
    max_lhs: Optional[int] = None,
) -> List[Tuple[Tuple[str, ...], FDSet]]:
    """Lossless BCNF decomposition by recursive violation splitting.

    Returns ``[(component_attributes, projected_fds), ...]``.  Each split
    replaces ``R`` by ``(X ∪ closure(X) ∩ R)`` and ``(R - closure(X)) ∪ X``
    for a violating ``X -> Y`` — the standard lossless step (the shared
    attributes ``X`` determine the first component).  Dependency
    preservation is *not* guaranteed (it cannot be, in general, for BCNF);
    use :mod:`repro.normalization.preserve` to check what survived.
    """
    attrs = parse_attrs(attributes)
    fd_list = [as_fd(f) for f in fds]

    result: List[Tuple[Tuple[str, ...], FDSet]] = []
    stack: List[Tuple[str, ...]] = [attrs]
    while stack:
        component = stack.pop()
        local = project_fds(fd_list, component, max_lhs=max_lhs)
        violations = bcnf_violations(component, local)
        if not violations:
            result.append((component, local))
            continue
        fd = violations[0]
        closure = attribute_closure_linear(fd.lhs, local)
        inside = tuple(a for a in component if a in closure)
        rest = tuple(
            a for a in component if a in fd.lhs or a not in closure
        )
        if set(inside) == set(component):  # pragma: no cover - defensive
            result.append((component, local))
            continue
        stack.append(inside)
        stack.append(rest)
    return sorted(result, key=lambda pair: pair[0])
