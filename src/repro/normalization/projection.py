"""Projection of FD sets onto sub-schemes.

``project_fds(F, S)`` is the set of nontrivial FDs over the attributes of
``S`` implied by ``F`` — the dependency set a decomposition component
inherits.  Computed via attribute closure over subsets of ``S``
(exponential in ``|S|``; the standard hardness, guarded by ``max_lhs``).
"""

from __future__ import annotations

import itertools
from typing import Iterable, List, Optional

from ..core.attributes import AttrsInput, parse_attrs
from ..core.fd import FD, FDInput, FDSet, as_fd
from ..armstrong.closure import attribute_closure_linear
from ..armstrong.cover import minimal_cover


def project_fds(
    fds: Iterable[FDInput],
    attributes: AttrsInput,
    minimize: bool = True,
    max_lhs: Optional[int] = None,
) -> FDSet:
    """FDs of ``F+`` whose attributes all lie within ``attributes``.

    For each ``X ⊆ attributes`` the maximal projected FD is
    ``X -> (closure(X) ∩ attributes) - X``.  With ``minimize=True`` the
    result is returned as a minimal cover (recommended: raw projections
    are extremely redundant).
    """
    attrs = parse_attrs(attributes)
    fd_list = [as_fd(f) for f in fds]
    bound = len(attrs) if max_lhs is None else min(max_lhs, len(attrs))
    projected: List[FD] = []
    for size in range(1, bound + 1):
        for lhs in itertools.combinations(attrs, size):
            closure = attribute_closure_linear(lhs, fd_list)
            rhs = tuple(a for a in attrs if a in closure and a not in lhs)
            if rhs:
                projected.append(FD(lhs, rhs))
    if minimize:
        return minimal_cover(projected)
    return FDSet(projected)
