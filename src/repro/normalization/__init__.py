"""Normalization theory on top of Theorem 1 (sections 1, 5, 7)."""

from .decompose import (
    bcnf_decompose,
    bcnf_violations,
    is_3nf,
    is_bcnf,
)
from .lossless import (
    binary_split_is_lossless,
    is_lossless_join,
    join_tableau,
)
from .preserve import (
    is_dependency_preserving,
    preserved_closure,
    unpreserved_fds,
)
from .projection import project_fds
from .synthesize import synthesize_3nf
from .universal import (
    decompose_instance,
    join_all,
    natural_join,
    universal_instance,
    weak_universal_check,
)

__all__ = [
    "bcnf_decompose",
    "bcnf_violations",
    "binary_split_is_lossless",
    "decompose_instance",
    "is_3nf",
    "is_bcnf",
    "is_dependency_preserving",
    "is_lossless_join",
    "join_all",
    "join_tableau",
    "natural_join",
    "preserved_closure",
    "project_fds",
    "synthesize_3nf",
    "universal_instance",
    "unpreserved_fds",
    "weak_universal_check",
]
