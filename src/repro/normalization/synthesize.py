"""3NF synthesis (Bernstein) from a minimal cover.

The dependency-preserving, lossless 3NF construction: one scheme per
minimal-cover FD (grouping FDs with equal left-hand sides), plus a key
scheme when no component contains a candidate key.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Tuple

from ..armstrong.cover import minimal_cover
from ..armstrong.keys import candidate_keys
from ..core.attributes import AttrsInput, attrs_union, parse_attrs
from ..core.fd import FDInput, FDSet, as_fd


def synthesize_3nf(
    attributes: AttrsInput, fds: Iterable[FDInput]
) -> List[Tuple[str, ...]]:
    """Bernstein synthesis into 3NF component schemes.

    Steps: minimal cover; one scheme ``X ∪ Y`` per group of cover FDs with
    the same determinant ``X``; add one candidate key as its own scheme if
    no component contains one; drop components subsumed by others.
    """
    attrs = parse_attrs(attributes)
    cover = minimal_cover(fds)

    grouped: Dict[FrozenSet[str], List] = {}
    for fd in cover:
        grouped.setdefault(frozenset(fd.lhs), []).append(fd)

    components: List[Tuple[str, ...]] = []
    for lhs_key, members in grouped.items():
        scheme = attrs_union(
            members[0].lhs, *(fd.rhs for fd in members)
        )
        components.append(scheme)

    # attributes mentioned by no FD must still be stored somewhere
    covered = set().union(*(set(c) for c in components)) if components else set()
    leftover = tuple(a for a in attrs if a not in covered)
    if leftover:
        components.append(leftover)

    keys = candidate_keys(attrs, cover)
    if not any(
        any(set(key) <= set(component) for key in keys)
        for component in components
    ):
        components.append(keys[0])

    # drop subsumed components (a scheme contained in another is redundant)
    components.sort(key=len, reverse=True)
    kept: List[Tuple[str, ...]] = []
    for component in components:
        if not any(set(component) <= set(other) for other in kept):
            kept.append(component)
    return sorted(kept)
