"""Dependency preservation of a decomposition.

A decomposition preserves ``F`` when the union of the projections of ``F``
onto the components implies all of ``F``.  Computing projections is
exponential; the standard polynomial test avoids it: for each FD
``X -> Y`` in ``F``, iterate ``Z := Z ∪ (closure_F(Z ∩ Ri) ∩ Ri)`` over the
components until fixpoint, starting from ``Z = X``; the FD is preserved
iff ``Y ⊆ Z``.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Set

from ..armstrong.closure import attribute_closure_linear
from ..core.attributes import AttrsInput, parse_attrs
from ..core.fd import FD, FDInput, as_fd


def preserved_closure(
    seed: AttrsInput,
    fds: Iterable[FDInput],
    components: Sequence[AttrsInput],
) -> Set[str]:
    """The closure of ``seed`` under the *projected* dependencies, computed
    without materializing any projection."""
    fd_list = [as_fd(f) for f in fds]
    component_sets = [set(parse_attrs(c)) for c in components]
    closure: Set[str] = set(parse_attrs(seed))
    changed = True
    while changed:
        changed = False
        for component in component_sets:
            inside = closure & component
            if not inside:
                continue
            gained = (
                set(attribute_closure_linear(tuple(inside), fd_list)) & component
            )
            if not gained <= closure:
                closure |= gained
                changed = True
    return closure


def is_dependency_preserving(
    attributes: AttrsInput,
    components: Sequence[AttrsInput],
    fds: Iterable[FDInput],
) -> bool:
    """Does the decomposition preserve every FD of ``fds``?"""
    fd_list = [as_fd(f) for f in fds]
    return all(
        set(fd.rhs) <= preserved_closure(fd.lhs, fd_list, components)
        for fd in fd_list
    )


def unpreserved_fds(
    attributes: AttrsInput,
    components: Sequence[AttrsInput],
    fds: Iterable[FDInput],
) -> List[FD]:
    """The FDs lost by the decomposition (for diagnostics)."""
    fd_list = [as_fd(f) for f in fds]
    return [
        fd
        for fd in fd_list
        if not set(fd.rhs) <= preserved_closure(fd.lhs, fd_list, components)
    ]
