"""Lossless-join test via the tableau chase — on the paper's own machinery.

The classical test builds a tableau with one row per component scheme:
row ``i`` carries the *distinguished* value in the columns of its scheme
and a fresh subscripted variable elsewhere, then chases with the FDs and
accepts iff some row becomes all-distinguished.

The subscripted variables are exactly the paper's nulls and the FD chase
rule is exactly the NS-rule (equate the Y-cells of X-agreeing rows;
constant beats variable; variables merge into an equivalence class — a
NEC).  So this module just *instantiates* :func:`repro.chase.chase` on a
tableau built from nulls — the reproduction's bonus: [Graham 80]'s "tableau
chase" and the paper's NS-rules are one algorithm, and the library shows it.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple

from ..chase.engine import MODE_EXTENDED, chase
from ..core.attributes import AttrsInput, parse_attrs
from ..core.fd import FDInput
from ..core.relation import Relation
from ..core.schema import RelationSchema
from ..core.values import is_constant, null


def join_tableau(
    attributes: AttrsInput, components: Sequence[AttrsInput]
) -> Relation:
    """The lossless-join tableau: distinguished constants + fresh nulls."""
    attrs = parse_attrs(attributes)
    schema = RelationSchema("tableau", attrs)
    rows: List[List] = []
    for component in components:
        inside = set(parse_attrs(component))
        rows.append(
            [f"a_{attr}" if attr in inside else null() for attr in attrs]
        )
    return Relation(schema, rows)


def is_lossless_join(
    attributes: AttrsInput,
    components: Sequence[AttrsInput],
    fds: Iterable[FDInput],
) -> bool:
    """Does the decomposition have a lossless join under ``fds``?

    Chases the tableau with the extended NS-rules and accepts iff some row
    holds the distinguished constant in every column.  (Distinct constants
    never meet in a tableau column — each column has one distinguished
    value — so the extended and basic chases coincide here; extended is
    used because its fixpoint is canonical.)
    """
    attrs = parse_attrs(attributes)
    tableau = join_tableau(attrs, components)
    result = chase(tableau, fds, mode=MODE_EXTENDED)
    distinguished = tuple(f"a_{attr}" for attr in attrs)
    return any(
        tuple(row.values) == distinguished for row in result.relation.rows
    )


def binary_split_is_lossless(
    attributes: AttrsInput,
    first: AttrsInput,
    second: AttrsInput,
    fds: Iterable[FDInput],
) -> bool:
    """The binary shortcut: ``R1 ∩ R2 -> R1`` or ``R1 ∩ R2 -> R2``.

    Equivalent to the tableau test for two components; both are exercised
    against each other in the tests.
    """
    from ..armstrong.closure import attribute_closure_linear

    first_attrs = set(parse_attrs(first))
    second_attrs = set(parse_attrs(second))
    shared = tuple(a for a in parse_attrs(attributes) if a in first_attrs & second_attrs)
    if not shared:
        return False
    closure = attribute_closure_linear(shared, fds)
    return first_attrs <= closure or second_attrs <= closure
