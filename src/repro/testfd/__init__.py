"""The TEST-FDs algorithm family (Figure 3, Theorems 2-3).

High-level entry point::

    from repro.testfd import check_fds

    check_fds(r, fds, convention="strong")   # Theorem 2
    check_fds(r, fds, convention="weak", ensure_minimal=True)   # Theorem 3

``convention="strong"`` decides *strong* satisfiability on arbitrary
instances.  ``convention="weak"`` decides *weak* satisfiability **provided
the instance is minimally incomplete** (Theorem 3's precondition);
``ensure_minimal=True`` chases with the basic NS-rules first,
``verify_minimal=True`` instead raises when the precondition fails.
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping, Optional

from ..core.fd import FDInput
from ..core.relation import Relation
from ..core.values import Null, is_null
from ..errors import ConventionError, NotMinimallyIncompleteError
from .batched import check_fds_batched
from .bucket import check_fds_bucket, check_single_fd_presorted
from .conventions import (
    CONVENTION_STRONG,
    CONVENTION_WEAK,
    class_function,
    x_equal,
    y_unequal,
)
from .pairwise import CheckAnswer, TestFDsOutcome, Witness, check_fds_pairwise
from .sortmerge import check_fds_sortmerge

__all__ = [
    "CONVENTION_STRONG",
    "CONVENTION_WEAK",
    "CheckAnswer",
    "TestFDsOutcome",
    "Witness",
    "check_fds",
    "check_fds_batched",
    "check_fds_bucket",
    "check_fds_pairwise",
    "check_fds_sortmerge",
    "check_single_fd_presorted",
    "class_function",
    "x_equal",
    "y_unequal",
]


def check_fds(
    relation: Relation,
    fds: Iterable[FDInput],
    convention: str = CONVENTION_WEAK,
    method: str = "auto",
    null_classes: Optional[Mapping[Null, Any]] = None,
    ensure_minimal: bool = False,
    verify_minimal: bool = False,
) -> TestFDsOutcome:
    """Run TEST-FDs with the requested convention and method.

    ``method``: ``"sortmerge"`` (Figure 3), ``"pairwise"`` (the footnote's
    O(n²) variant), ``"bucket"`` (the bucket-sort variant), ``"batched"``
    (bucket batched over shared left-hand sides: one grouping per distinct
    X decides every ``X -> Y_i``), or ``"auto"``.

    ``"auto"`` is batching-aware: when at least two FDs share a left-hand
    side (as a column set) and grouping is convention-safe — always under
    the weak convention; under the strong convention only when every
    non-trivial LHS is null-free in the instance — it routes to
    ``batched``, amortizing the X-key work across the group.  Otherwise it
    runs sort-merge, falling back to pairwise for the strong convention on
    instances with left-hand-side nulls.  Every route preserves the
    documented witness contract: a *no* answer carries an honest violating
    pair under the convention's comparisons (the variants may differ in
    *which* honest pair they report; callers that need a specific
    variant's witness should name the method).

    For the weak convention, Theorem 3 requires a minimally incomplete
    instance; ``ensure_minimal=True`` chases first (basic NS-rules; the
    chase's NECs are carried into the comparisons automatically because its
    output shares one ``Null`` object per class).
    """
    fd_list = list(fds)
    if convention == CONVENTION_WEAK and ensure_minimal:
        from ..chase import MODE_BASIC, minimally_incomplete

        result = minimally_incomplete(relation, fd_list, mode=MODE_BASIC)
        relation = result.relation
    elif convention == CONVENTION_WEAK and verify_minimal:
        from ..chase import is_minimally_incomplete

        if not is_minimally_incomplete(relation, fd_list):
            raise NotMinimallyIncompleteError(
                "Theorem 3 requires a minimally incomplete instance; pass "
                "ensure_minimal=True to chase first"
            )

    if method == "sortmerge":
        return check_fds_sortmerge(relation, fd_list, convention, null_classes)
    if method == "pairwise":
        return check_fds_pairwise(relation, fd_list, convention, null_classes)
    if method == "bucket":
        return check_fds_bucket(relation, fd_list, convention, null_classes)
    if method == "batched":
        return check_fds_batched(relation, fd_list, convention, null_classes)
    if method != "auto":
        raise ValueError(f"unknown TEST-FDs method {method!r}")

    if _batching_pays(relation, fd_list, convention):
        return check_fds_batched(relation, fd_list, convention, null_classes)
    try:
        return check_fds_sortmerge(relation, fd_list, convention, null_classes)
    except ConventionError:
        return check_fds_pairwise(relation, fd_list, convention, null_classes)


def _batching_pays(
    relation: Relation, fds: Iterable[FDInput], convention: str
) -> bool:
    """Should ``auto`` route to the shared-LHS batched variant?

    True when some left-hand side (as a column set) recurs — that is when
    batching actually amortizes anything — and the batched grouping is
    convention-safe: under the strong convention nulls cannot be grouped,
    so every non-trivial LHS column must be null-free in the instance
    (matching the :class:`~repro.errors.ConventionError` contract of the
    grouping variants rather than racing it).
    """
    from ..core.fd import as_fd as _as_fd

    groups: set = set()
    seen_shared = False
    lhs_columns: set = set()
    for fd in fds:
        fd = _as_fd(fd).normalized()
        if fd.is_trivial():
            continue
        cols = frozenset(relation.schema.position(a) for a in fd.lhs)
        if cols in groups:
            seen_shared = True
        groups.add(cols)
        lhs_columns |= cols
    if not seen_shared:
        return False
    if convention == CONVENTION_STRONG and any(
        is_null(row.values[c]) for row in relation.rows for c in lhs_columns
    ):
        return False
    return True
