"""The TEST-FDs algorithm family (Figure 3, Theorems 2-3).

High-level entry point::

    from repro.testfd import check_fds

    check_fds(r, fds, convention="strong")   # Theorem 2
    check_fds(r, fds, convention="weak", ensure_minimal=True)   # Theorem 3

``convention="strong"`` decides *strong* satisfiability on arbitrary
instances.  ``convention="weak"`` decides *weak* satisfiability **provided
the instance is minimally incomplete** (Theorem 3's precondition);
``ensure_minimal=True`` chases with the basic NS-rules first,
``verify_minimal=True`` instead raises when the precondition fails.
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping, Optional

from ..core.fd import FDInput
from ..core.relation import Relation
from ..core.values import Null, is_null
from ..errors import ConventionError, NotMinimallyIncompleteError
from .batched import check_fds_batched
from .bucket import check_fds_bucket, check_single_fd_presorted
from .conventions import (
    CONVENTION_STRONG,
    CONVENTION_WEAK,
    class_function,
    x_equal,
    y_unequal,
)
from .pairwise import TestFDsOutcome, Witness, check_fds_pairwise
from .sortmerge import check_fds_sortmerge

__all__ = [
    "CONVENTION_STRONG",
    "CONVENTION_WEAK",
    "TestFDsOutcome",
    "Witness",
    "check_fds",
    "check_fds_batched",
    "check_fds_bucket",
    "check_fds_pairwise",
    "check_fds_sortmerge",
    "check_single_fd_presorted",
    "class_function",
    "x_equal",
    "y_unequal",
]


def check_fds(
    relation: Relation,
    fds: Iterable[FDInput],
    convention: str = CONVENTION_WEAK,
    method: str = "auto",
    null_classes: Optional[Mapping[Null, Any]] = None,
    ensure_minimal: bool = False,
    verify_minimal: bool = False,
) -> TestFDsOutcome:
    """Run TEST-FDs with the requested convention and method.

    ``method``: ``"sortmerge"`` (Figure 3), ``"pairwise"`` (the footnote's
    O(n²) variant), ``"bucket"`` (the bucket-sort variant), ``"batched"``
    (bucket batched over shared left-hand sides: one grouping per distinct
    X decides every ``X -> Y_i``), or ``"auto"`` — sort-merge where the
    convention permits it, falling back to pairwise for the strong
    convention on instances with left-hand-side nulls.

    For the weak convention, Theorem 3 requires a minimally incomplete
    instance; ``ensure_minimal=True`` chases first (basic NS-rules; the
    chase's NECs are carried into the comparisons automatically because its
    output shares one ``Null`` object per class).
    """
    fd_list = list(fds)
    if convention == CONVENTION_WEAK and ensure_minimal:
        from ..chase import MODE_BASIC, minimally_incomplete

        result = minimally_incomplete(relation, fd_list, mode=MODE_BASIC)
        relation = result.relation
    elif convention == CONVENTION_WEAK and verify_minimal:
        from ..chase import is_minimally_incomplete

        if not is_minimally_incomplete(relation, fd_list):
            raise NotMinimallyIncompleteError(
                "Theorem 3 requires a minimally incomplete instance; pass "
                "ensure_minimal=True to chase first"
            )

    if method == "sortmerge":
        return check_fds_sortmerge(relation, fd_list, convention, null_classes)
    if method == "pairwise":
        return check_fds_pairwise(relation, fd_list, convention, null_classes)
    if method == "bucket":
        return check_fds_bucket(relation, fd_list, convention, null_classes)
    if method == "batched":
        return check_fds_batched(relation, fd_list, convention, null_classes)
    if method != "auto":
        raise ValueError(f"unknown TEST-FDs method {method!r}")

    try:
        return check_fds_sortmerge(relation, fd_list, convention, null_classes)
    except ConventionError:
        return check_fds_pairwise(relation, fd_list, convention, null_classes)
