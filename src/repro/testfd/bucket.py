"""Hash/bucket-grouping TEST-FDs variants (Figure 3, "Additional
Assumptions").

The paper: "If bucket sort is used, sorting takes time O(n·p) where p is
the number of attributes in X for a dependency X -> Y.  Furthermore, if
there is only one dependency (e.g. BCNF with one key), and the relation is
already sorted, the test requires linear time on the relation size."

:func:`check_fds_bucket` replaces the comparison sort with dictionary
grouping on X-keys — the natural realization of bucket sort on equality
keys — giving ``O(|F| · n · p)`` total.  Key-equality must coincide with
the convention's equality comparison, which holds for the weak convention
(and for the strong one only on null-free left-hand sides, as with
sort-merge).

:func:`check_single_fd_presorted` is the linear special case: one FD, the
relation already sorted on its left-hand side; a single adjacent-pair scan
decides.  The function *verifies* sortedness (also linear) rather than
trusting the caller.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple

from ..core.fd import FDInput, as_fd
from ..core.relation import Relation
from ..core.values import Null, is_null
from ..errors import ConventionError, ReproError
from .conventions import (
    CONVENTION_STRONG,
    CONVENTION_WEAK,
    class_function,
    ensure_no_nothing,
    y_unequal,
)
from .pairwise import TestFDsOutcome, Witness
from .sortmerge import _sort_key


def _bucket_key(values, cols, convention, class_of) -> Tuple:
    key: List[Any] = []
    for c in cols:
        value = values[c]
        if is_null(value):
            key.append(("null", class_of(value)))
        else:
            key.append(("const", value))
    return tuple(key)


def check_fds_bucket(
    relation: Relation,
    fds: Iterable[FDInput],
    convention: str = CONVENTION_WEAK,
    null_classes: Optional[Mapping[Null, Any]] = None,
) -> TestFDsOutcome:
    """TEST-FDs with bucket (hash) grouping: ``O(|F| · n · p)``."""
    ensure_no_nothing(relation)
    class_of = class_function(null_classes)
    for fd in (as_fd(f).normalized() for f in fds):
        if fd.is_trivial():
            continue
        lhs_cols = [relation.schema.position(a) for a in fd.lhs]
        rhs_cols = [(a, relation.schema.position(a)) for a in fd.rhs]
        if convention == CONVENTION_STRONG and any(
            is_null(row.values[c]) for row in relation.rows for c in lhs_cols
        ):
            raise ConventionError(
                "bucket TEST-FDs cannot group nulls under the strong "
                "convention; use check_fds_pairwise"
            )
        # bucket -> per-Y-attribute (anchor value, anchor row); the weak
        # convention prefers constants as anchors (same refinement as
        # sort-merge — see repro.testfd.sortmerge's module docstring)
        buckets: Dict[Tuple, Dict[int, Tuple[Any, int]]] = {}
        for index, row in enumerate(relation.rows):
            key = _bucket_key(row.values, lhs_cols, convention, class_of)
            anchors = buckets.get(key)
            if anchors is None:
                buckets[key] = {
                    c: (row.values[c], index) for _, c in rhs_cols
                }
                continue
            for attr, c in rhs_cols:
                anchor_value, anchor_index = anchors[c]
                if (
                    convention == CONVENTION_WEAK
                    and is_null(anchor_value)
                    and not is_null(row.values[c])
                ):
                    anchors[c] = (row.values[c], index)
                    continue
                if y_unequal(
                    convention, anchor_value, row.values[c], class_of
                ):
                    return TestFDsOutcome(
                        False, Witness(fd, anchor_index, index, attr)
                    )
    return TestFDsOutcome(True, None)


def check_single_fd_presorted(
    relation: Relation,
    fd: FDInput,
    convention: str = CONVENTION_WEAK,
    null_classes: Optional[Mapping[Null, Any]] = None,
) -> TestFDsOutcome:
    """The linear special case: one FD, relation already sorted on its LHS.

    Verifies the sort order (raises :class:`repro.errors.ReproError` when
    the input is not sorted — silently wrong answers are worse than an
    O(n) check), then decides with one adjacent-run scan.
    """
    fd = as_fd(fd).normalized()
    ensure_no_nothing(relation)
    class_of = class_function(null_classes)
    if fd.is_trivial():
        return TestFDsOutcome(True, None)
    lhs_cols = [relation.schema.position(a) for a in fd.lhs]
    rhs_cols = [(a, relation.schema.position(a)) for a in fd.rhs]
    if convention == CONVENTION_STRONG and any(
        is_null(row.values[c]) for row in relation.rows for c in lhs_cols
    ):
        raise ConventionError(
            "the presorted test cannot order nulls under the strong "
            "convention; use check_fds_pairwise"
        )

    class_ordinals: dict = {}
    keys = [
        tuple(_sort_key(row.values[c], class_of, class_ordinals) for c in lhs_cols)
        for row in relation.rows
    ]
    for previous, current in zip(keys, keys[1:]):
        if current < previous:
            raise ReproError(
                "check_single_fd_presorted requires the relation to be "
                "sorted on the FD's left-hand side"
            )

    run_start = 0
    anchors = {
        c: (relation.rows[0].values[c], 0) for _, c in rhs_cols
    } if relation.rows else {}
    for index in range(1, len(relation.rows)):
        row_values = relation.rows[index].values
        if keys[index] != keys[run_start]:
            run_start = index
            anchors = {c: (row_values[c], index) for _, c in rhs_cols}
            continue
        for attr, c in rhs_cols:
            anchor_value, anchor_index = anchors[c]
            if (
                convention == CONVENTION_WEAK
                and is_null(anchor_value)
                and not is_null(row_values[c])
            ):
                anchors[c] = (row_values[c], index)
                continue
            if y_unequal(convention, anchor_value, row_values[c], class_of):
                return TestFDsOutcome(
                    False, Witness(fd, anchor_index, index, attr)
                )
    return TestFDsOutcome(True, None)
