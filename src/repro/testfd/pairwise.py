"""The unsorted O(|F|·n²) TEST-FDs variant (Figure 3's footnote).

"Another problem is sorting the null values under the above convention.
Alternatively, another version of TEST-FDs may be used, where the relation
is not sorted and each tuple is tested against every other tuple in the
relation.  The running time is now O(|F|·n²)."

This variant works under *both* conventions on arbitrary instances — in
particular it is the general decision procedure for Theorem 2, where the
strong convention's null-matches-everything equality cannot be realized by
a total sort order.
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping, NamedTuple, Optional, Tuple

from ..core.fd import FD, FDInput, as_fd
from ..core.relation import Relation
from ..core.values import Null
from .conventions import (
    CONVENTION_WEAK,
    class_function,
    ensure_no_nothing,
    x_equal,
    y_unequal,
)


class Witness(NamedTuple):
    """A violating pair found by a TEST-FDs run."""

    fd: FD
    first_row: int
    second_row: int
    attribute: str


class TestFDsOutcome(NamedTuple):
    """The yes/no answer of TEST-FDs plus the violating pair on *no*."""

    satisfied: bool
    witness: Optional[Witness]

    def __bool__(self) -> bool:  # pragma: no cover - convenience only
        return self.satisfied


class CheckAnswer(TestFDsOutcome):
    """A :class:`TestFDsOutcome` that also speaks the unified answer
    schema (:mod:`repro.api`).

    Still a ``(satisfied, witness)`` named tuple — unpacking, indexing
    and truthiness are unchanged — but it remembers the convention it
    was checked under and the cut it was computed against, and
    :meth:`answer` renders the verdict as a :class:`repro.api.Answer`.
    The tag follows the paper's duality: a *weak* verdict quantifies
    existentially over completions (``maybe``), a *strong* verdict
    universally (``certain``).
    """

    convention: str
    as_of: Any
    live: bool

    @classmethod
    def wrap(
        cls,
        outcome: "TestFDsOutcome",
        convention: str,
        as_of: Any = None,
        live: bool = True,
    ) -> "CheckAnswer":
        wrapped = cls(outcome.satisfied, outcome.witness)
        wrapped.convention = convention
        wrapped.as_of = as_of
        wrapped.live = live
        return wrapped

    def at(self, as_of: Any, live: bool = True) -> "CheckAnswer":
        """The same verdict stamped with a journal cut."""
        self.as_of = as_of
        self.live = live
        return self

    def witness_payload(self) -> Optional[dict]:
        """The witness in the wire shape the server has always used."""
        if self.witness is None:
            return None
        return {
            "fd": str(self.witness.fd),
            "rows": [self.witness.first_row, self.witness.second_row],
            "attr": self.witness.attribute,
        }

    def answer(self):
        """The verdict as a unified :class:`repro.api.Answer`."""
        from ..api import TAG_CERTAIN, TAG_MAYBE, Answer  # no import cycle

        meta: dict = {
            "satisfied": self.satisfied,
            "convention": self.convention,
        }
        witness = self.witness_payload()
        if witness is not None:
            meta["witness"] = witness
        return Answer(
            tag=TAG_CERTAIN if self.convention == "strong" else TAG_MAYBE,
            attributes=(),
            rows=(),
            as_of=self.as_of,
            live=self.live,
            meta=meta,
        )


def check_fds_pairwise(
    relation: Relation,
    fds: Iterable[FDInput],
    convention: str = CONVENTION_WEAK,
    null_classes: Optional[Mapping[Null, Any]] = None,
) -> TestFDsOutcome:
    """TEST-FDs by exhaustive pair comparison: ``O(|F| · n² · width)``."""
    ensure_no_nothing(relation)
    class_of = class_function(null_classes)
    rows = relation.rows
    values = [row.values for row in rows]
    schema = relation.schema
    n = len(rows)
    for fd in (as_fd(f).normalized() for f in fds):
        if fd.is_trivial():
            continue
        lhs_cols = schema.positions(fd.lhs)
        rhs_cols = tuple(zip(fd.rhs, schema.positions(fd.rhs)))
        # X-projections materialized once per FD: the quadratic pair loop
        # then touches flat tuples instead of re-indexing row objects
        lhs_proj = [tuple(vals[c] for c in lhs_cols) for vals in values]
        for i in range(n):
            first_x = lhs_proj[i]
            first = values[i]
            for j in range(i + 1, n):
                second_x = lhs_proj[j]
                if all(
                    x_equal(convention, a, b, class_of)
                    for a, b in zip(first_x, second_x)
                ):
                    second = values[j]
                    for attr, c in rhs_cols:
                        if y_unequal(convention, first[c], second[c], class_of):
                            return TestFDsOutcome(
                                False, Witness(fd, i, j, attr)
                            )
    return TestFDsOutcome(True, None)
