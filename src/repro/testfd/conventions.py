"""Null comparison conventions for TEST-FDs (Theorems 2 and 3).

Figure 3's algorithm is convention-parametric: it only ever asks two kinds
of question — an *equality* comparison on X-values and an *inequality*
comparison on Y-values — and the two theorems differ exactly in how those
comparisons treat nulls:

* **strong** (Theorem 2): "Any equality comparison where a null is involved
  is positive.  Also, any inequality comparison where a null is involved is
  positive, unless both values compared are null and they belong to the
  same equivalence class."
* **weak** (Theorem 3): "Any inequality comparison where a null is involved
  is negative.  Also, any equality comparison where a null is involved is
  negative, unless both values compared are null and they belong to the
  same equivalence class."

Note the comparisons are deliberately *not* complements of each other:
under either convention the same two values can compare neither equal nor
unequal.

Equivalence classes (the NECs of section 6) are represented the way the
chase emits them — nulls of one class are the *same* ``Null`` object — and
an explicit ``null_classes`` mapping can overlay additional classes.

The assumptions inherited from the paper's setting: within one tuple each
null position is a distinct unknown unless NEC-related, constants occurring
in a column belong to its domain, and no domain is a singleton.  The
*nothing* element never appears in TEST-FDs inputs (an instance containing
it is already known inconsistent — Theorem 4(b)); conventions refuse it.
"""

from __future__ import annotations

from typing import Any, Callable, Mapping, Optional

from ..core.values import Null, is_nothing, is_null
from ..errors import InconsistentInstanceError

CONVENTION_STRONG = "strong"
CONVENTION_WEAK = "weak"

ClassOf = Callable[[Null], Any]


def class_function(null_classes: Optional[Mapping[Null, Any]]) -> ClassOf:
    """Build the null→equivalence-class mapping used by comparisons.

    Default: object identity (the chase's shared-null representation);
    ``null_classes`` entries overlay explicit class keys.
    """
    if null_classes is None:
        return id
    return lambda n: null_classes.get(n, id(n))


def _reject_nothing(value: Any) -> None:
    if is_nothing(value):
        raise InconsistentInstanceError(
            "TEST-FDs is undefined on instances containing the nothing "
            "element; the instance is already known not weakly satisfiable"
        )


def ensure_no_nothing(relation) -> None:
    """Entry guard for the TEST-FDs variants: refuse *nothing* upfront.

    The per-comparison checks would only fire when a comparison happens to
    touch the inconsistent cell; the contract is stronger — an instance
    containing *nothing* is already known inconsistent and must be refused
    regardless of where the cell sits.
    """
    for row in relation.rows:
        for value in row.values:
            _reject_nothing(value)


def x_equal(convention: str, first: Any, second: Any, class_of: ClassOf) -> bool:
    """The equality comparison on a pair of X-values."""
    _reject_nothing(first)
    _reject_nothing(second)
    first_null, second_null = is_null(first), is_null(second)
    if convention == CONVENTION_STRONG:
        if first_null or second_null:
            return True
        return first == second
    if convention == CONVENTION_WEAK:
        if first_null and second_null:
            return class_of(first) == class_of(second)
        if first_null or second_null:
            return False
        return first == second
    raise ValueError(f"unknown convention {convention!r}")


def y_unequal(convention: str, first: Any, second: Any, class_of: ClassOf) -> bool:
    """The inequality comparison on a pair of Y-values."""
    _reject_nothing(first)
    _reject_nothing(second)
    first_null, second_null = is_null(first), is_null(second)
    if convention == CONVENTION_STRONG:
        if first_null and second_null:
            return class_of(first) != class_of(second)
        if first_null or second_null:
            return True
        return first != second
    if convention == CONVENTION_WEAK:
        if first_null or second_null:
            return False
        return first != second
    raise ValueError(f"unknown convention {convention!r}")
