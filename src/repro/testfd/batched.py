"""Shared-LHS batched TEST-FDs: one grouping per distinct left-hand side.

The per-FD variants re-derive the same row grouping once per dependency:
``check_fds_bucket`` recomputes every row's X-key and rebuilds the hash
table for each FD, even when the FD set is ``A -> B, A -> C, A -> D`` and
the three keys are identical.  Real FD sets are full of shared left-hand
sides — a key determines many attributes, and canonical covers list one
FD per determined attribute — so the X-key work (the dominant per-row
cost: a tuple build plus a class lookup per LHS column) multiplies by the
number of dependencies for no reason.

:func:`check_fds_batched` groups the FD set by left-hand side *as a column
set*, buckets each distinct X once, and decides every ``X -> Y_i`` of the
group from that single grouping: per bucket it keeps one anchor per
Y-column of the *union* of the group's right-hand sides, and a single row
scan records, for each member FD, the first violation it would have found.
Cost is one key computation per row per **distinct** LHS instead of per
FD, with the same ``O(n · p)`` bucket bound otherwise.

The contract is exact equivalence with :func:`~repro.testfd.bucket.
check_fds_bucket` — outcome *and* witness *and* the strong-convention
rejection behavior — which takes some care, because bucket's observable
behavior depends on its FD-major iteration order:

* bucket returns the witness of the **first FD in input order** that has a
  violation (it never looks at later FDs once one fails); the batched scan
  therefore records per-FD witnesses and answers from the input order, not
  from whichever violation sits at the smallest row index.
* per FD, bucket's witness is the first ``(row, rhs-attr)`` conflict in
  row-major, rhs-order scan; the batched scan preserves exactly that by
  checking each still-unviolated member's rhs columns in order per row.
* under the strong convention bucket raises :class:`ConventionError` for a
  null-bearing LHS **when it reaches that FD** — after earlier FDs were
  checked (and possibly returned a witness).  Batching scans groups
  lazily, at the input position of each group's first member, so the
  raise-vs-witness race resolves identically.

Anchor evolution depends only on the bucket and the Y-column (never on
which FD asked), so sharing anchors across a group's members is lossless;
the differential suite (``tests/testfd/test_batched_property.py``) pins
witness-identity against bucket and outcome-identity against pairwise and
sort-merge on randomized instances under both conventions.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple

from ..core.fd import FD, FDInput, as_fd
from ..core.relation import Relation
from ..core.values import Null, is_null
from ..errors import ConventionError
from .conventions import (
    CONVENTION_STRONG,
    CONVENTION_WEAK,
    class_function,
    ensure_no_nothing,
)
from .pairwise import TestFDsOutcome, Witness


def _group_scan(
    relation: Relation,
    members: List[Tuple[int, FD, Tuple[Tuple[str, int], ...]]],
    lhs_cols: Tuple[int, ...],
    convention: str,
    class_of,
) -> Dict[int, Witness]:
    """One bucket pass deciding every member FD of one LHS group.

    ``members`` are ``(input position, fd, ((rhs attr, col), ...))`` in
    input order; returns the bucket-identical first witness per violated
    input position.  The scan stops once the group's *first* member is
    violated: the caller walks FDs in input order, so it returns that
    witness before any later member of this group could be consulted —
    matching bucket's early return without losing a verdict anyone reads.
    """
    union_cols: List[int] = []
    for _, _, rhs_cols in members:
        for _, col in rhs_cols:
            if col not in union_cols:
                union_cols.append(col)
    first_position = members[0][0]

    witnesses: Dict[int, Witness] = {}
    weak = convention == CONVENTION_WEAK
    single = len(lhs_cols) == 1
    lhs_col = lhs_cols[0] if single else -1
    # bucket -> per-Y-column (anchor value, anchor row); same constant-
    # preferring anchor refinement as bucket/sort-merge.  The inequality
    # comparison is ``y_unequal`` inlined: ``ensure_no_nothing`` already
    # vetted every cell, so only the null/constant case analysis remains.
    buckets: Dict[Any, Dict[int, Tuple[Any, int]]] = {}
    for index, values in enumerate(row.values for row in relation.rows):
        if single:
            value = values[lhs_col]
            key = ("null", class_of(value)) if is_null(value) else ("const", value)
        else:
            key = tuple(
                ("null", class_of(value)) if is_null(value) else ("const", value)
                for value in (values[c] for c in lhs_cols)
            )
        anchors = buckets.get(key)
        if anchors is None:
            buckets[key] = {c: (values[c], index) for c in union_cols}
            continue
        # each Y-column's anchor update / conflict verdict is FD-agnostic:
        # compute it once, then attribute conflicts per member in rhs order
        conflicts: Optional[Dict[int, int]] = None
        for c in union_cols:
            anchor_value, anchor_index = anchors[c]
            value = values[c]
            if weak:
                if is_null(value):
                    continue  # a null never compares unequal (Theorem 3)
                if is_null(anchor_value):
                    anchors[c] = (value, index)  # constant-preferring anchor
                    continue
                if anchor_value == value:
                    continue
            else:
                anchor_null, value_null = is_null(anchor_value), is_null(value)
                if anchor_null and value_null:
                    if class_of(anchor_value) == class_of(value):
                        continue
                elif not (anchor_null or value_null) and anchor_value == value:
                    continue
                # a lone null compares unequal to anything (Theorem 2)
            if conflicts is None:
                conflicts = {}
            conflicts[c] = anchor_index
        if conflicts is None:
            continue
        for position, fd, rhs_cols in members:
            if position in witnesses:
                continue
            for attr, c in rhs_cols:
                if c in conflicts:
                    witnesses[position] = Witness(fd, conflicts[c], index, attr)
                    break
        if first_position in witnesses:
            break  # the walk returns this witness; nothing later is read
    return witnesses


def check_fds_batched(
    relation: Relation,
    fds: Iterable[FDInput],
    convention: str = CONVENTION_WEAK,
    null_classes: Optional[Mapping[Null, Any]] = None,
) -> TestFDsOutcome:
    """TEST-FDs batched over shared left-hand sides.

    Equivalent to :func:`~repro.testfd.bucket.check_fds_bucket` — same
    outcome, same witness, same strong-convention rejections — at one
    bucket grouping per *distinct* LHS instead of per FD.
    """
    ensure_no_nothing(relation)
    class_of = class_function(null_classes)
    schema = relation.schema
    fd_list = [as_fd(f).normalized() for f in fds]

    # input position -> (group key, fd, rhs columns); trivial FDs never
    # fire in bucket either, so they join no group
    plan: List[Tuple[frozenset, FD, Tuple[Tuple[str, int], ...]]] = []
    group_lhs: Dict[frozenset, Tuple[int, ...]] = {}
    for fd in fd_list:
        if fd.is_trivial():
            plan.append((frozenset(), fd, ()))
            continue
        lhs_cols = tuple(schema.position(a) for a in fd.lhs)
        group = frozenset(lhs_cols)
        # the bucket partition is insensitive to LHS column order, so the
        # first member's order serves the whole group
        group_lhs.setdefault(group, lhs_cols)
        plan.append((group, fd, tuple((a, schema.position(a)) for a in fd.rhs)))

    members_of: Dict[frozenset, List[Tuple[int, FD, Tuple[Tuple[str, int], ...]]]] = {}
    for position, (group, fd, rhs_cols) in enumerate(plan):
        if group:
            members_of.setdefault(group, []).append((position, fd, rhs_cols))

    scanned: Dict[frozenset, Dict[int, Witness]] = {}
    for position, (group, fd, _) in enumerate(plan):
        if not group:
            continue
        verdicts = scanned.get(group)
        if verdicts is None:
            lhs_cols = group_lhs[group]
            if convention == CONVENTION_STRONG and any(
                is_null(row.values[c])
                for row in relation.rows
                for c in lhs_cols
            ):
                raise ConventionError(
                    "batched TEST-FDs cannot group nulls under the strong "
                    "convention; use check_fds_pairwise"
                )
            verdicts = _group_scan(
                relation, members_of[group], lhs_cols, convention, class_of
            )
            scanned[group] = verdicts
        witness = verdicts.get(position)
        if witness is not None:
            return TestFDsOutcome(False, witness)
    return TestFDsOutcome(True, None)
