"""TEST-FDs, the sort-merge algorithm of Figure 3: ``O(|F| · n log n)``.

For each FD ``X -> Y``: sort the relation on ``X`` (lexicographically),
then scan; within each run of X-equal tuples, compare every tuple's
``Y``-values against the run's first tuple; answer *no* on the first
positive inequality comparison, *yes* if the scan completes.

Sorting nulls (the paper, Theorem 3's proof): "null values are considered
distinct and their order is not important.  They are never equated unless
they are in the same equivalence class, in which case they appear
together."  Under the weak convention this is realized by sort keys —
constants first (ordered by value), then null classes (ordered by a stable
class ordinal) — making key-equality coincide with the convention's
equality comparison, so the merge scan is exact.

Under the *strong* convention a null compares equal to everything; no total
order realizes that, which is exactly the footnote's reservation.  The
strong sort-merge therefore requires the FD's left-hand side to be
null-free across the instance (then X-keys are plain constants) and raises
:class:`repro.errors.ConventionError` otherwise, deferring to the pairwise
variant (:mod:`repro.testfd.pairwise`).

One refinement over the literal pseudocode: under the weak convention,
"not unequal" is not transitive (a null is not-unequal to *two distinct*
constants), so comparing only against the run's first tuple can miss a
constant/constant conflict hiding behind a leading null — e.g. the run
``Y = [⊥, c1, c2]``.  On *minimally incomplete* instances (Theorem 3's
precondition) the case cannot arise: the NS-rule would have substituted
the null.  To be exact on all inputs at the same complexity, the scan
keeps a **constant-preferring anchor** per Y-attribute: the first constant
of the run once one appears, the first tuple's value until then.  Under
the strong convention not-unequal *is* an equivalence relation (equal
constants / same-class nulls), so the literal first-tuple anchor is
already complete and is used as-is.
"""

from __future__ import annotations

from typing import Any, Iterable, List, Mapping, Optional, Tuple

from ..core.fd import FDInput, as_fd
from ..core.relation import Relation
from ..core.values import Null, constant_key, is_nothing, is_null
from ..errors import ConventionError, InconsistentInstanceError
from .conventions import (
    CONVENTION_STRONG,
    CONVENTION_WEAK,
    class_function,
    ensure_no_nothing,
    y_unequal,
)
from .pairwise import TestFDsOutcome, Witness


def _sort_key(value: Any, class_of, class_ordinals: dict) -> Tuple:
    """Total order: constants (by type/value), then null classes."""
    if is_nothing(value):
        raise InconsistentInstanceError(
            "TEST-FDs is undefined on instances containing nothing"
        )
    if is_null(value):
        key = class_of(value)
        ordinal = class_ordinals.setdefault(key, len(class_ordinals))
        return (1, ordinal)
    return (0,) + constant_key(value)


#: Anchor policies for the merge scan (see module docstring).
ANCHOR_CONSTANT_PREFERRING = "constant-preferring"
ANCHOR_LITERAL = "literal"


def check_fds_sortmerge(
    relation: Relation,
    fds: Iterable[FDInput],
    convention: str = CONVENTION_WEAK,
    null_classes: Optional[Mapping[Null, Any]] = None,
    anchor: str = ANCHOR_CONSTANT_PREFERRING,
) -> TestFDsOutcome:
    """The Figure 3 algorithm.  ``O(|F| · n log n)`` comparisons.

    ``anchor`` selects the merge-scan policy: ``"constant-preferring"``
    (default; exact on all inputs) or ``"literal"`` (Figure 3's first-tuple
    anchor verbatim — exact on minimally incomplete inputs, may miss
    conflicts hiding behind a leading null otherwise; kept for the
    faithfulness ablation).  See the module docstring for the strong-
    convention restriction.
    """
    if anchor not in (ANCHOR_CONSTANT_PREFERRING, ANCHOR_LITERAL):
        raise ValueError(f"unknown anchor policy {anchor!r}")
    ensure_no_nothing(relation)
    class_of = class_function(null_classes)
    values = [row.values for row in relation.rows]
    schema = relation.schema
    for fd in (as_fd(f).normalized() for f in fds):
        if fd.is_trivial():
            continue
        lhs_cols = schema.positions(fd.lhs)
        rhs_cols = tuple(zip(fd.rhs, schema.positions(fd.rhs)))

        if convention == CONVENTION_STRONG and any(
            is_null(vals[c]) for vals in values for c in lhs_cols
        ):
            raise ConventionError(
                f"sort-merge TEST-FDs cannot sort nulls under the strong "
                f"convention (FD {fd!r} has nulls on its left-hand side); "
                "use check_fds_pairwise"
            )

        class_ordinals: dict = {}
        keyed: List[Tuple[Tuple, int]] = []
        for index, vals in enumerate(values):
            key = tuple(
                _sort_key(vals[c], class_of, class_ordinals)
                for c in lhs_cols
            )
            keyed.append((key, index))
        keyed.sort(key=lambda pair: pair[0])

        # merge scan: within each run of equal X-keys, compare against a
        # per-attribute anchor (Figure 3's inner loop, with the weak
        # convention's constant-preferring anchor — see module docstring)
        position = 0
        n = len(keyed)
        while position < n:
            first_key, first_index = keyed[position]
            first_values = values[first_index]
            anchors = {
                c: (first_values[c], first_index) for _, c in rhs_cols
            }
            nxt = position + 1
            while nxt < n and keyed[nxt][0] == first_key:
                other_index = keyed[nxt][1]
                other_values = values[other_index]
                for attr, c in rhs_cols:
                    anchor_value, anchor_index = anchors[c]
                    if (
                        anchor == ANCHOR_CONSTANT_PREFERRING
                        and convention == CONVENTION_WEAK
                        and is_null(anchor_value)
                        and not is_null(other_values[c])
                    ):
                        anchors[c] = (other_values[c], other_index)
                        continue
                    if y_unequal(
                        convention, anchor_value, other_values[c], class_of
                    ):
                        return TestFDsOutcome(
                            False,
                            Witness(fd, anchor_index, other_index, attr),
                        )
                nxt += 1
            position = nxt
    return TestFDsOutcome(True, None)
