"""The unified read-answer schema: one shape for every read surface.

Every read in the system — :meth:`repro.ChaseSession.check` /
:meth:`~repro.ChaseSession.result`, :class:`repro.Database` relation
reads, the server's read verbs, and the query layer's answer sets — now
speaks one schema:

* ``tag`` — ``"certain"`` (true under *every* completion of the
  instance) or ``"maybe"`` (true under some completion but not all):
  the paper's strong/weak duality, carried on every answer;
* ``rows`` + ``attributes`` — the answer tuples (engine values: nulls
  stay :class:`~repro.core.values.Null` objects, so identity — which
  unknowns are the *same* unknown — survives into the answer);
* ``as_of`` — the journal seq of the consistent cut the answer was
  computed against (``None`` for a bare in-memory session; a
  ``{relation: seq}`` mapping for multi-relation query answers);
* ``provenance`` — where each answer null came from: answer-scoped
  null name → ``{"relation", "attribute", "id"}`` (``id`` is the
  relation codec's canonical null id when known);
* ``meta`` — verb-specific extras (``satisfied``/``witness`` for
  checks, ``has_nothing`` for fixpoints, counters for stats).

On the wire every answer-shaped response carries ``"v":``
:data:`WIRE_VERSION` so clients can dispatch on schema revisions.  The
old ad-hoc shapes (hand-rolled dicts and tuples per surface) are
deprecated but still work: :class:`Answer` answers dict-style access
(``answer["rows"]``) with a :class:`DeprecationWarning`, and the legacy
top-level response fields remain on the wire alongside the unified
ones.

Answers are first-class relations: :meth:`Answer.relation` materializes
the rows as a :class:`~repro.core.relation.Relation` that can seed a
chase or a :class:`~repro.ChaseSession` directly.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, Mapping, Optional, Sequence, Tuple

from .core.domain import Domain
from .core.relation import Relation
from .core.schema import RelationSchema
from .core.values import Null, is_null
from .errors import ReproError

#: the wire-schema revision carried as ``"v"`` on every answer-shaped
#: response; bump when the unified schema changes incompatibly.
WIRE_VERSION = 1

TAG_CERTAIN = "certain"
TAG_MAYBE = "maybe"
_TAGS = (TAG_CERTAIN, TAG_MAYBE)


def provenance_of(
    rows: Sequence[Sequence[Any]],
    attributes: Sequence[str],
    relation_name: str = "",
    null_id: Optional[Any] = None,
) -> Dict[str, Dict[str, Any]]:
    """Provenance for every null in ``rows``: label → origin record.

    ``relation_name`` names the relation the rows came from;
    ``null_id(null) -> str | None`` (optional) supplies the relation
    codec's canonical id for the null, when the codec knows it.
    """
    out: Dict[str, Dict[str, Any]] = {}
    for row in rows:
        for attribute, value in zip(attributes, row):
            if not is_null(value) or value.label in out:
                continue
            record: Dict[str, Any] = {"attribute": attribute}
            if relation_name:
                record["relation"] = relation_name
            if null_id is not None:
                known = null_id(value)
                if known is not None:
                    record["id"] = known
            out[value.label] = record
    return out


@dataclass
class Answer:
    """One answer set: rows + certainty tag + cut + null provenance."""

    tag: str
    attributes: Tuple[str, ...]
    rows: Tuple[Tuple[Any, ...], ...]
    as_of: Any = None
    live: bool = True
    provenance: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    meta: Dict[str, Any] = field(default_factory=dict)
    domains: Optional[Dict[str, Domain]] = None

    def __post_init__(self) -> None:
        if self.tag not in _TAGS:
            raise ReproError(
                f"unknown answer tag {self.tag!r}; expected one of {_TAGS}"
            )
        self.attributes = tuple(self.attributes)
        self.rows = tuple(tuple(row) for row in self.rows)

    # -- collection protocol ----------------------------------------------

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self) -> Iterator[Tuple[Any, ...]]:
        return iter(self.rows)

    def __bool__(self) -> bool:
        """Checks answer their verdict; answer sets answer non-emptiness."""
        if "satisfied" in self.meta:
            return bool(self.meta["satisfied"])
        return bool(self.rows)

    # -- the deprecated response-dict shape -------------------------------

    def __getitem__(self, key: str) -> Any:
        """Dict-style access, matching the old ad-hoc response shape.

        Deprecated: the old surfaces returned plain dicts and callers
        indexed them; those callers keep working against an
        :class:`Answer`, with a warning pointing at the attribute API.
        """
        warnings.warn(
            "repro: dict-style access to Answer objects is deprecated; "
            f"use the {key!r} attribute / to_payload() instead",
            DeprecationWarning,
            stacklevel=2,
        )
        return self._legacy_fields()[key]

    def get(self, key: str, default: Any = None) -> Any:
        """Deprecated dict-style ``get`` (see :meth:`__getitem__`)."""
        warnings.warn(
            "repro: dict-style access to Answer objects is deprecated; "
            f"use the {key!r} attribute / to_payload() instead",
            DeprecationWarning,
            stacklevel=2,
        )
        return self._legacy_fields().get(key, default)

    def _legacy_fields(self) -> Dict[str, Any]:
        fields: Dict[str, Any] = {
            "tag": self.tag,
            "attrs": list(self.attributes),
            "rows": [list(row) for row in self.rows],
            "as_of": self.as_of,
            "live": self.live,
        }
        fields.update(self.meta)
        return fields

    # -- materialization ---------------------------------------------------

    def relation(self, name: str = "answer") -> Relation:
        """The answer set as a first-class relation instance.

        Null objects are carried through by identity, so the result can
        seed a chase or a :class:`~repro.ChaseSession` and shared
        unknowns stay shared.
        """
        schema = RelationSchema(name, self.attributes, domains=self.domains)
        return Relation(schema, [list(row) for row in self.rows])

    # -- the wire shape ----------------------------------------------------

    def to_payload(self, encode: Optional[Any] = None) -> Dict[str, Any]:
        """The versioned wire object (``encode`` maps one engine value to
        its wire token; identity when omitted)."""
        encode = encode or (lambda value: value)
        payload: Dict[str, Any] = {
            "v": WIRE_VERSION,
            "tag": self.tag,
            "attrs": list(self.attributes),
            "rows": [[encode(value) for value in row] for row in self.rows],
            "as_of": self.as_of,
            "live": self.live,
        }
        if self.provenance:
            payload["provenance"] = {
                label: dict(record)
                for label, record in self.provenance.items()
            }
        if self.meta:
            payload["meta"] = dict(self.meta)
        return payload

    @classmethod
    def from_payload(
        cls, payload: Mapping[str, Any], decode: Optional[Any] = None
    ) -> "Answer":
        """Parse a versioned wire object back into an :class:`Answer`."""
        version = payload.get("v")
        if version != WIRE_VERSION:
            raise ReproError(
                f"unsupported answer schema version {version!r} "
                f"(this client speaks v{WIRE_VERSION})"
            )
        decode = decode or (lambda token: token)
        return cls(
            tag=str(payload["tag"]),
            attributes=tuple(payload["attrs"]),
            rows=tuple(
                tuple(decode(token) for token in row)
                for row in payload.get("rows", ())
            ),
            as_of=payload.get("as_of"),
            live=bool(payload.get("live", True)),
            provenance=dict(payload.get("provenance", {})),
            meta=dict(payload.get("meta", {})),
        )


@dataclass
class ResultSet:
    """A query's full answer: the certain set and the maybe set.

    ``certain`` holds the rows true under **every** completion of the
    database; ``maybe`` the rows true under *some* completion but not
    provably all.  ``possible()`` is their union — the paper's weak
    (possible-answer) set.  Both answers share attributes, cut, and
    provenance.
    """

    certain: Answer
    maybe: Answer

    def __post_init__(self) -> None:
        if self.certain.tag != TAG_CERTAIN:
            raise ReproError("ResultSet.certain must carry tag='certain'")
        if self.maybe.tag != TAG_MAYBE:
            raise ReproError("ResultSet.maybe must carry tag='maybe'")

    @property
    def attributes(self) -> Tuple[str, ...]:
        return self.certain.attributes

    @property
    def as_of(self) -> Any:
        return self.certain.as_of

    @property
    def live(self) -> bool:
        return self.certain.live and self.maybe.live

    def possible(self) -> Answer:
        """Certain ∪ maybe as one ``maybe``-tagged answer set."""
        provenance = dict(self.certain.provenance)
        provenance.update(self.maybe.provenance)
        return Answer(
            tag=TAG_MAYBE,
            attributes=self.attributes,
            rows=self.certain.rows + self.maybe.rows,
            as_of=self.as_of,
            live=self.live,
            provenance=provenance,
            domains=self.certain.domains,
        )

    def relation(self, name: str = "answer") -> Relation:
        """The possible-answer set materialized as a relation."""
        return self.possible().relation(name)

    def to_payload(self, encode: Optional[Any] = None) -> Dict[str, Any]:
        payload = {
            "v": WIRE_VERSION,
            "attrs": list(self.attributes),
            "certain": self.certain.to_payload(encode),
            "maybe": self.maybe.to_payload(encode),
            "as_of": self.as_of,
            "live": self.live,
        }
        return payload

    @classmethod
    def from_payload(
        cls, payload: Mapping[str, Any], decode: Optional[Any] = None
    ) -> "ResultSet":
        version = payload.get("v")
        if version != WIRE_VERSION:
            raise ReproError(
                f"unsupported answer schema version {version!r} "
                f"(this client speaks v{WIRE_VERSION})"
            )
        return cls(
            certain=Answer.from_payload(payload["certain"], decode),
            maybe=Answer.from_payload(payload["maybe"], decode),
        )
