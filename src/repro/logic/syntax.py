"""Formula syntax for System C (section 5).

System C [Bertram 73] is a modal propositional logic for unknown outcomes.
Its language is classical propositional logic — negation, conjunction,
disjunction — extended with the unary operator ``V`` ("necessarily true"),
here spelled :class:`Nec`.  Implication is *defined*:
``P => Q := not P or Q``.

Formulas are immutable, hashable trees, so they can be memoized by the
tautology oracle and used as dictionary keys.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Tuple, Union


class Formula:
    """Base class for System C formulas.  Use the leaf/connective classes.

    Operator sugar: ``~p`` for negation, ``p & q`` / ``p | q`` for the binary
    connectives, ``p >> q`` for defined implication.
    """

    __slots__ = ()

    def __invert__(self) -> "Formula":
        return Not(self)

    def __and__(self, other: "Formula") -> "Formula":
        return And((self, other))

    def __or__(self, other: "Formula") -> "Formula":
        return Or((self, other))

    def __rshift__(self, other: "Formula") -> "Formula":
        return implies(self, other)


@dataclass(frozen=True)
class Var(Formula):
    """A propositional variable."""

    __slots__ = ("name",)
    name: str

    def __repr__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Not(Formula):
    """Negation."""

    __slots__ = ("operand",)
    operand: Formula

    def __repr__(self) -> str:
        return f"¬{_wrap(self.operand)}"


@dataclass(frozen=True)
class And(Formula):
    """N-ary conjunction (at least one operand)."""

    __slots__ = ("operands",)
    operands: Tuple[Formula, ...]

    def __post_init__(self) -> None:
        if not self.operands:
            raise ValueError("And needs at least one operand")

    def __repr__(self) -> str:
        return " ∧ ".join(_wrap(op) for op in self.operands)


@dataclass(frozen=True)
class Or(Formula):
    """N-ary disjunction (at least one operand)."""

    __slots__ = ("operands",)
    operands: Tuple[Formula, ...]

    def __post_init__(self) -> None:
        if not self.operands:
            raise ValueError("Or needs at least one operand")

    def __repr__(self) -> str:
        return " ∨ ".join(_wrap(op) for op in self.operands)


@dataclass(frozen=True)
class Nec(Formula):
    """The modal operator ``V`` — "necessarily true"."""

    __slots__ = ("operand",)
    operand: Formula

    def __repr__(self) -> str:
        return f"V{_wrap(self.operand)}"


def _wrap(formula: Formula) -> str:
    if isinstance(formula, (Var, Not, Nec)):
        return repr(formula)
    return f"({formula!r})"


# ---------------------------------------------------------------------------
# builders
# ---------------------------------------------------------------------------

VarsInput = Union[str, Iterable[str]]


def variables_of(formula: Formula) -> Tuple[str, ...]:
    """All propositional variables of a formula, sorted."""
    found: set = set()

    def walk(node: Formula) -> None:
        if isinstance(node, Var):
            found.add(node.name)
        elif isinstance(node, (Not, Nec)):
            walk(node.operand)
        elif isinstance(node, (And, Or)):
            for op in node.operands:
                walk(op)
        else:  # pragma: no cover - defensive
            raise TypeError(f"not a formula: {node!r}")

    walk(formula)
    return tuple(sorted(found))


def conj(names: VarsInput) -> Formula:
    """A conjunctive term of variables: ``conj("A B")`` is ``A ∧ B``.

    A single variable yields the bare :class:`Var` (the paper's
    "X = A ∧ B or simply X = AB" convention).
    """
    if isinstance(names, str):
        names = names.split()
    parts = tuple(Var(name) for name in names)
    if not parts:
        raise ValueError("a conjunctive term needs at least one variable")
    if len(parts) == 1:
        return parts[0]
    return And(parts)


def implies(antecedent: Formula, consequent: Formula) -> Formula:
    """Defined implication: ``P => Q := ¬P ∨ Q`` (section 5)."""
    return Or((Not(antecedent), consequent))
