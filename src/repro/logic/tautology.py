"""Two-valued tautology oracle for System C's evaluation rule 1.

C's evaluation scheme is *not* truth-functional precisely because of rule
1: "If P is a tautology in the classical two-valued logic, V(P) = true" —
applied before any structural rule.  The oracle here decides classical
tautology-hood by truth-table enumeration; the formulas arising from
implicational statements are tiny, and results are memoized on the (hashable)
formula.

Modal subformulas ``V Q`` are treated as opaque atoms for the classical
check: two-valued logic says nothing about the modal operator, so a formula
can only be a classical tautology by virtue of its propositional skeleton.
"""

from __future__ import annotations

import itertools
from functools import lru_cache
from typing import Dict, List, Tuple

from .syntax import And, Formula, Nec, Not, Or, Var


def _atoms(formula: Formula) -> Tuple[Formula, ...]:
    """The classical atoms: variables and outermost modal subformulas."""
    found: List[Formula] = []
    seen: set = set()

    def walk(node: Formula) -> None:
        if isinstance(node, (Var, Nec)):
            if node not in seen:
                seen.add(node)
                found.append(node)
        elif isinstance(node, Not):
            walk(node.operand)
        elif isinstance(node, (And, Or)):
            for op in node.operands:
                walk(op)
        else:  # pragma: no cover - defensive
            raise TypeError(f"not a formula: {node!r}")

    walk(formula)
    return tuple(found)


def evaluate_two_valued(formula: Formula, assignment: Dict[Formula, bool]) -> bool:
    """Classical evaluation with atoms (vars and Nec-subformulas) assigned."""
    if isinstance(formula, (Var, Nec)):
        return assignment[formula]
    if isinstance(formula, Not):
        return not evaluate_two_valued(formula.operand, assignment)
    if isinstance(formula, And):
        return all(evaluate_two_valued(op, assignment) for op in formula.operands)
    if isinstance(formula, Or):
        return any(evaluate_two_valued(op, assignment) for op in formula.operands)
    raise TypeError(f"not a formula: {formula!r}")  # pragma: no cover


@lru_cache(maxsize=65536)
def is_tautology(formula: Formula) -> bool:
    """Is ``formula`` a classical two-valued tautology?

    Truth-table enumeration over the formula's atoms (variables plus opaque
    modal subformulas), memoized.
    """
    atoms = _atoms(formula)
    for bits in itertools.product((False, True), repeat=len(atoms)):
        if not evaluate_two_valued(formula, dict(zip(atoms, bits))):
            return False
    return True


@lru_cache(maxsize=65536)
def is_contradiction(formula: Formula) -> bool:
    """Is ``formula`` classically unsatisfiable?  (Not used by C's rules —
    the paper's scheme only privileges tautologies — but exposed because the
    asymmetry is part of what makes C interesting to poke at in tests.)"""
    atoms = _atoms(formula)
    for bits in itertools.product((False, True), repeat=len(atoms)):
        if evaluate_two_valued(formula, dict(zip(atoms, bits))):
            return False
    return True
