"""Implicational statements and logical inference in System C (section 5).

An *implicational statement* has the form ``X => Y`` where ``X``, ``Y`` are
conjunctive terms of propositional variables — syntactically the mirror
image of a functional dependency.  The paper's Lemma 2 gives a sound and
complete rule set (I1-I4) for these statements; this module provides the
semantic side:

* ``f`` is **logically inferred** by ``F`` iff every assignment giving all
  members of ``F`` the value *true* also gives ``f`` *true*;
* **weak logical inference** relaxes both sides to "not false".

Both are decided by enumerating the ``3^n`` assignments over the mentioned
variables (n is small in all of the paper's uses; the Armstrong engine in
:mod:`repro.armstrong` is the scalable route and Theorem 1 says they agree).

**The normalized fragment.**  The FD ↔ statement correspondence (and the
completeness of the I-rules) holds on statements whose right-hand side is
disjoint from the left — the same ``X ∩ Y = ∅`` assumption Proposition 1
makes for FDs.  Outside that fragment the C-evaluation genuinely
distinguishes statements that are FD-equivalent: with ``a(A) = unknown``
and ``a(B) = true``, ``V(A => B) = true`` but ``V(A => AB) = unknown``
(the conjunction ``A ∧ B`` on the right is stuck at unknown), even though
the FDs ``A -> B`` and ``A -> AB`` hold in exactly the same instances.  In
particular *augmentation is unsound* for raw statements.  Inference-level
functions (:func:`infers`, :func:`counterexample`, and the derivation
system) therefore normalize every statement on entry — the reading under
which every equivalence the paper claims is exactly true; raw evaluation of
unnormalized statements stays available through
:meth:`ImplicationalStatement.evaluate` and is exercised in the tests to
document the divergence.
"""

from __future__ import annotations

import itertools
import re
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple, Union

from ..core.attributes import parse_attrs
from ..core.fd import FD, FDInput, as_fd
from ..core.truth import FALSE, TRUE, UNKNOWN, TruthValue, and_, or_, not_
from ..errors import SchemaError
from .syntax import Formula, conj, implies, variables_of
from .system_c import Assignment, assignments_over, evaluate

_ARROW = re.compile(r"=>|⇒")


class ImplicationalStatement:
    """``X => Y`` with ``X``, ``Y`` conjunctions of propositional variables."""

    __slots__ = ("lhs", "rhs")

    def __init__(self, lhs, rhs) -> None:
        self.lhs: Tuple[str, ...] = parse_attrs(lhs)
        self.rhs: Tuple[str, ...] = parse_attrs(rhs)
        if not self.lhs or not self.rhs:
            raise SchemaError("implicational statements need non-empty sides")

    @classmethod
    def parse(cls, text: str) -> "ImplicationalStatement":
        parts = _ARROW.split(text)
        if len(parts) != 2:
            raise SchemaError(f"cannot parse implicational statement {text!r}")
        return cls(parts[0], parts[1])

    @classmethod
    def from_fd(cls, fd: FDInput) -> "ImplicationalStatement":
        """The statement corresponding to an FD (same attribute names).

        The FD is normalized first (``X -> Y`` reads as ``X -> Y - X``):
        the correspondence of Lemma 3 lives in the normalized fragment —
        Proposition 1 assumes ``X ∩ Y = ∅`` on the relation side too.
        """
        fd = as_fd(fd).normalized()
        return cls(fd.lhs, fd.rhs)

    def to_fd(self) -> FD:
        """The FD corresponding to this statement."""
        return FD(self.lhs, self.rhs)

    def is_trivial(self) -> bool:
        """``Y ⊆ X`` — true under every assignment (rule 1)."""
        return set(self.rhs) <= set(self.lhs)

    def normalized(self) -> "ImplicationalStatement":
        """The statement with left-hand variables removed from the right.

        This is the FD-faithful reading (see the module docstring); a fully
        trivial statement normalizes to ``X => X``.
        """
        reduced = tuple(v for v in self.rhs if v not in set(self.lhs))
        if not reduced:
            return ImplicationalStatement(self.lhs, self.lhs)
        return ImplicationalStatement(self.lhs, reduced)

    # -- semantics ------------------------------------------------------------

    def to_formula(self) -> Formula:
        """``¬(x1 ∧ ... ∧ xk) ∨ (y1 ∧ ... ∧ ym)`` — the defined implication."""
        return implies(conj(self.lhs), conj(self.rhs))

    @property
    def variables(self) -> Tuple[str, ...]:
        return tuple(sorted(set(self.lhs) | set(self.rhs)))

    def evaluate(self, assignment: Assignment) -> TruthValue:
        """``V(X => Y, a)`` via System C (rule 1 applies when Y ⊆ X)."""
        return evaluate(self.to_formula(), assignment)

    def evaluate_fast(self, assignment: Assignment) -> TruthValue:
        """Direct evaluation without building the formula tree.

        Mirrors System C exactly for this statement shape: the statement is
        a classical tautology iff ``rhs ⊆ lhs`` (then *true*), otherwise
        Kleene ``¬X ∨ Y`` — with rule 1 also applying to the conjunctive
        subterms, which are never tautologies, so the structural rules
        suffice below top level.  Cross-checked against :meth:`evaluate`
        in the test suite.
        """
        if set(self.rhs) <= set(self.lhs):
            return TRUE
        lhs_value = and_(*(assignment[name] for name in self.lhs))
        rhs_value = and_(*(assignment[name] for name in self.rhs))
        return or_(not_(lhs_value), rhs_value)

    # -- value semantics ---------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, ImplicationalStatement)
            and set(self.lhs) == set(other.lhs)
            and set(self.rhs) == set(other.rhs)
        )

    def __hash__(self) -> int:
        return hash((frozenset(self.lhs), frozenset(self.rhs)))

    def __repr__(self) -> str:
        return f"{' '.join(self.lhs)} => {' '.join(self.rhs)}"


StatementInput = Union[ImplicationalStatement, str, FD]


def as_statement(value: StatementInput) -> ImplicationalStatement:
    """Coerce strings (``"A B => C"``) and FDs to implicational statements."""
    if isinstance(value, ImplicationalStatement):
        return value
    if isinstance(value, FD):
        return ImplicationalStatement.from_fd(value)
    return ImplicationalStatement.parse(value)


# ---------------------------------------------------------------------------
# logical inference
# ---------------------------------------------------------------------------


def _all_variables(
    premises: Sequence[ImplicationalStatement],
    conclusion: ImplicationalStatement,
) -> Tuple[str, ...]:
    names: set = set(conclusion.variables)
    for premise in premises:
        names.update(premise.variables)
    return tuple(sorted(names))


def infers(
    premises: Iterable[StatementInput],
    conclusion: StatementInput,
    weak: bool = False,
) -> bool:
    """Is ``conclusion`` (weakly) logically inferred from ``premises``?

    Strong: every assignment making all premises *true* makes the
    conclusion *true*.  Weak: every assignment keeping all premises
    *not-false* keeps the conclusion *not-false*.
    """
    return counterexample(premises, conclusion, weak=weak) is None


def counterexample(
    premises: Iterable[StatementInput],
    conclusion: StatementInput,
    weak: bool = False,
) -> Optional[Dict[str, TruthValue]]:
    """A witnessing assignment against the inference, or ``None``.

    Statements are normalized on entry (see the module docstring).  The
    witness is the bridge to the two-tuple relations of Lemma 3: feed it to
    :func:`repro.logic.bridge.assignment_to_relation` to exhibit the
    counterexample *relation*.
    """
    premise_list = [as_statement(p).normalized() for p in premises]
    goal = as_statement(conclusion).normalized()
    for assignment in assignments_over(_all_variables(premise_list, goal)):
        if weak:
            if all(p.evaluate_fast(assignment) is not FALSE for p in premise_list):
                if goal.evaluate_fast(assignment) is FALSE:
                    return assignment
        else:
            if all(p.evaluate_fast(assignment) is TRUE for p in premise_list):
                if goal.evaluate_fast(assignment) is not TRUE:
                    return assignment
    return None


def strong_consequences(
    premises: Iterable[StatementInput], variables: Sequence[str]
) -> List[ImplicationalStatement]:
    """All statements over ``variables`` strongly inferred from ``premises``.

    Exponential in ``len(variables)``; used by the equivalence experiment
    (E8) on small universes to compare against Armstrong closure.
    """
    premise_list = [as_statement(p) for p in premises]
    names = tuple(variables)
    out: List[ImplicationalStatement] = []
    for size in range(1, len(names) + 1):
        for lhs in itertools.combinations(names, size):
            for rsize in range(1, len(names) + 1):
                for rhs in itertools.combinations(names, rsize):
                    statement = ImplicationalStatement(lhs, rhs)
                    if infers(premise_list, statement):
                        out.append(statement)
    return out
