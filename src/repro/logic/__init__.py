"""System C and the implicational-statement reduction (paper section 5)."""

from .bridge import (
    assignment_to_relation,
    fd_counterexample_relation,
    fd_strongly_holds_two_tuple,
    lemma3_agrees,
    relation_to_assignment,
)
from .derivation import (
    ALL_RULES,
    Derivation,
    Step,
    check_step,
    derivable,
    derive,
    variable_closure,
)
from .implicational import (
    ImplicationalStatement,
    as_statement,
    counterexample,
    infers,
    strong_consequences,
)
from .syntax import And, Formula, Nec, Not, Or, Var, conj, implies, variables_of
from .system_c import (
    assignments_over,
    evaluate,
    evaluate_truth_functional,
    is_c_tautology,
)
from .tautology import is_contradiction, is_tautology

__all__ = [
    # syntax
    "And",
    "Formula",
    "Nec",
    "Not",
    "Or",
    "Var",
    "conj",
    "implies",
    "variables_of",
    # tautology oracle
    "is_contradiction",
    "is_tautology",
    # evaluation scheme
    "assignments_over",
    "evaluate",
    "evaluate_truth_functional",
    "is_c_tautology",
    # implicational statements
    "ImplicationalStatement",
    "as_statement",
    "counterexample",
    "infers",
    "strong_consequences",
    # derivations
    "ALL_RULES",
    "Derivation",
    "Step",
    "check_step",
    "derivable",
    "derive",
    "variable_closure",
    # bridge
    "assignment_to_relation",
    "fd_counterexample_relation",
    "fd_strongly_holds_two_tuple",
    "lemma3_agrees",
    "relation_to_assignment",
]
