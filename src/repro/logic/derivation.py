"""The I1-I4 proof system for implicational statements (Lemma 2) with
explicit, checkable derivations.

Lemma 2 (implicational completeness) gives sound and complete inference
rules for implicational statements in C.  We implement them as named proof
rules producing *derivation trees* that can be verified step by step:

* ``I1`` (reflexivity)      if ``Y ⊆ X`` then ``X => Y``;
* ``I2`` (transitivity)     from ``X => Y`` and ``Y => Z`` infer ``X => Z``;
* ``I3`` (union)            from ``X => Y`` and ``X => Z`` infer ``X => YZ``;
* ``I4`` (decomposition)    from ``X => YZ`` infer ``X => Y`` (and ``X => Z``).

Armstrong's *augmentation* is also provided as a checkable rule, but note
that both augmentation and union are only sound in the **normalized
fragment** (conclusions whose right-hand side is disjoint from the left) —
see :mod:`repro.logic.implicational` for the counterexample.  Derivability
and proof construction therefore normalize statements on entry; the I1-I4
system is then sound and complete w.r.t. strong logical inference, which is
exactly Lemma 2.

:func:`derive` builds a derivation of a goal from premises, or returns
``None``; it decides derivability with the variable-closure algorithm (the
same computation as Armstrong attribute closure, which is the point of the
paper's section 5) and then assembles an honest tree whose every node is
locally checked by :func:`check_step`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from .implicational import ImplicationalStatement, StatementInput, as_statement

RULE_PREMISE = "premise"
RULE_REFLEXIVITY = "I1-reflexivity"
RULE_TRANSITIVITY = "I2-transitivity"
RULE_UNION = "I3-union"
RULE_DECOMPOSITION = "I4-decomposition"
RULE_AUGMENTATION = "derived-augmentation"

ALL_RULES = (
    RULE_PREMISE,
    RULE_REFLEXIVITY,
    RULE_TRANSITIVITY,
    RULE_UNION,
    RULE_DECOMPOSITION,
    RULE_AUGMENTATION,
)


@dataclass(frozen=True)
class Step:
    """One node of a derivation tree."""

    statement: ImplicationalStatement
    rule: str
    inputs: Tuple["Step", ...] = ()

    def size(self) -> int:
        """Number of steps in the subtree (shared steps counted once)."""
        seen: Set[int] = set()

        def walk(step: "Step") -> None:
            if id(step) in seen:
                return
            seen.add(id(step))
            for child in step.inputs:
                walk(child)

        walk(self)
        return len(seen)

    def render(self, indent: int = 0) -> str:
        """A human-readable proof tree."""
        lines = [f"{'  ' * indent}{self.statement!r}   [{self.rule}]"]
        for child in self.inputs:
            lines.append(child.render(indent + 1))
        return "\n".join(lines)


def check_step(step: Step, premises: Iterable[StatementInput]) -> bool:
    """Local validity of a single step (not recursive).

    Each rule's side condition is verified against the step's inputs; a
    premise step must literally occur among ``premises``.
    """
    stmt = step.statement
    if step.rule == RULE_PREMISE:
        return any(as_statement(p) == stmt for p in premises) and not step.inputs
    if step.rule == RULE_REFLEXIVITY:
        return not step.inputs and set(stmt.rhs) <= set(stmt.lhs)
    if step.rule == RULE_AUGMENTATION:
        if len(step.inputs) != 1:
            return False
        inner = step.inputs[0].statement
        # stmt = X∪Z => Y∪Z for some Z, where inner = X => Y.  If any Z
        # works, the canonical Z = (lhs - X) ∪ (rhs - Y) works.
        x, y = set(inner.lhs), set(inner.rhs)
        z = (set(stmt.lhs) - x) | (set(stmt.rhs) - y)
        return set(stmt.lhs) == x | z and set(stmt.rhs) == y | z
    if step.rule == RULE_TRANSITIVITY:
        if len(step.inputs) != 2:
            return False
        first, second = (s.statement for s in step.inputs)
        return (
            set(first.lhs) == set(stmt.lhs)
            and set(first.rhs) == set(second.lhs)
            and set(second.rhs) == set(stmt.rhs)
        )
    if step.rule == RULE_DECOMPOSITION:
        if len(step.inputs) != 1:
            return False
        inner = step.inputs[0].statement
        return set(inner.lhs) == set(stmt.lhs) and set(stmt.rhs) <= set(inner.rhs)
    if step.rule == RULE_UNION:
        if len(step.inputs) != 2:
            return False
        first, second = (s.statement for s in step.inputs)
        return (
            set(first.lhs) == set(stmt.lhs)
            and set(second.lhs) == set(stmt.lhs)
            and set(stmt.rhs) == set(first.rhs) | set(second.rhs)
        )
    return False


@dataclass
class Derivation:
    """A finished derivation: the goal plus its proof tree."""

    goal: ImplicationalStatement
    root: Step
    premises: Tuple[ImplicationalStatement, ...]

    def verify(self) -> bool:
        """Check every step locally and that the root proves the goal."""
        if self.root.statement != self.goal:
            return False
        ok = True

        def walk(step: Step) -> None:
            nonlocal ok
            if not check_step(step, self.premises):
                ok = False
            for child in step.inputs:
                walk(child)

        walk(self.root)
        return ok

    def render(self) -> str:
        return self.root.render()

    def __len__(self) -> int:
        return self.root.size()


def derivable(
    premises: Iterable[StatementInput], goal: StatementInput
) -> bool:
    """Derivability via variable closure (sound + complete per Lemma 2).

    Statements are normalized on entry, matching :func:`infers` (the
    closure itself is insensitive to normalization — ``U => W`` and
    ``U => W - U`` contribute the same variables).
    """
    goal = as_statement(goal).normalized()
    closure = variable_closure(goal.lhs, premises)
    return set(goal.rhs) <= closure


def variable_closure(
    seed: Sequence[str], premises: Iterable[StatementInput]
) -> Set[str]:
    """The closure of ``seed`` under the implicational statements.

    The fixpoint of "if lhs ⊆ closure, add rhs" — identical in shape to
    Armstrong attribute closure, which is exactly the correspondence the
    paper's section 5 sets up.
    """
    statements = [as_statement(p) for p in premises]
    closure: Set[str] = set(seed)
    changed = True
    while changed:
        changed = False
        for statement in statements:
            if set(statement.lhs) <= closure and not (
                set(statement.rhs) <= closure
            ):
                closure.update(statement.rhs)
                changed = True
    return closure


def derive(
    premises: Iterable[StatementInput], goal: StatementInput
) -> Optional[Derivation]:
    """Construct an I1-I4 derivation of ``goal`` from ``premises``.

    Returns ``None`` when no derivation exists.  The construction follows
    the textbook completeness argument: maintain ``X => C`` for the growing
    closure ``C`` of ``X``; each firing premise ``U => V`` with ``U ⊆ C``
    extends it via reflexivity + transitivity + union; finish with one
    decomposition down to the goal's right-hand side.
    """
    goal = as_statement(goal).normalized()
    premise_list = [as_statement(p).normalized() for p in premises]
    if not derivable(premise_list, goal):
        return None

    lhs = tuple(goal.lhs)
    # X => X by reflexivity.
    current = Step(ImplicationalStatement(lhs, lhs), RULE_REFLEXIVITY)
    closure: Set[str] = set(lhs)

    changed = True
    while changed and not set(goal.rhs) <= closure:
        changed = False
        for statement in premise_list:
            if set(statement.lhs) <= closure and not set(statement.rhs) <= closure:
                # X => U  (decomposition of the running X => C)
                to_u = Step(
                    ImplicationalStatement(lhs, statement.lhs),
                    RULE_DECOMPOSITION,
                    (current,),
                )
                # X => V  (transitivity with the premise U => V)
                premise_step = Step(statement, RULE_PREMISE)
                to_v = Step(
                    ImplicationalStatement(lhs, statement.rhs),
                    RULE_TRANSITIVITY,
                    (to_u, premise_step),
                )
                # X => C ∪ V  (union)
                closure.update(statement.rhs)
                current = Step(
                    ImplicationalStatement(lhs, tuple(sorted(closure))),
                    RULE_UNION,
                    (current, to_v),
                )
                changed = True

    final = Step(goal, RULE_DECOMPOSITION, (current,))
    return Derivation(goal=goal, root=final, premises=tuple(premise_list))
