"""The FD ↔ implicational-statement bridge (section 5, Lemmas 3 and 4).

The paper's central reduction: fix a two-tuple relation ``s = {t, t'}`` and
an assignment ``a`` of truth values to attribute names such that, for every
attribute ``A``::

    t[A] = t'[A]              iff  a(A) = true
    t[A] ≠ t'[A]              iff  a(A) = false
    t[A] or t'[A] = null      iff  a(A) = unknown

Then (Lemma 3) ``X -> Y`` *strongly holds* in ``s`` iff ``V(X => Y, a) =
true``, and (Lemma 4) in the world of two-tuple relations an FD is inferred
from a set ``F`` iff the corresponding statement is a logical inference of
the corresponding statements.  Theorem 1 (Armstrong soundness/completeness
over nulls) is the composition of these lemmas with Lemma 2.

This module constructs the witnesses in both directions, which is what the
tests and experiment E8 exercise exhaustively.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Optional, Sequence, Tuple

from ..core.fd import FD, FDInput, as_fd
from ..core.relation import Relation
from ..core.satisfaction import strongly_holds
from ..core.schema import RelationSchema
from ..core.truth import FALSE, TRUE, UNKNOWN, TruthValue
from ..core.values import is_null, null
from ..errors import ReproError, SchemaError
from .implicational import ImplicationalStatement, StatementInput, as_statement
from .system_c import Assignment


def assignment_to_relation(
    assignment: Mapping[str, TruthValue],
    null_in_second: bool = True,
    name: str = "s",
) -> Relation:
    """The two-tuple relation realizing an assignment (Lemma 3's mapping).

    For each attribute: *true* → the two rows share a constant; *false* →
    two distinct constants; *unknown* → a null in one row and a constant in
    the other (``null_in_second`` picks the row; the paper allows either,
    and the tests verify the lemma for both placements).

    Domains are left unbounded: the lemma's argument is domain-independent
    (it never relies on exhausting a domain) and an unbounded domain keeps
    the F2 corner out of the way.
    """
    attrs = tuple(assignment)
    if not attrs:
        raise SchemaError("an assignment over no attributes has no relation")
    schema = RelationSchema(name, attrs)
    first: list = []
    second: list = []
    for attr in attrs:
        value = assignment[attr]
        if value is TRUE:
            first.append(f"c_{attr}")
            second.append(f"c_{attr}")
        elif value is FALSE:
            first.append(f"c_{attr}")
            second.append(f"d_{attr}")
        elif value is UNKNOWN:
            if null_in_second:
                first.append(f"c_{attr}")
                second.append(null(f"{attr}"))
            else:
                first.append(null(f"{attr}"))
                second.append(f"c_{attr}")
        else:  # pragma: no cover - defensive
            raise TypeError(f"not a truth value: {value!r}")
    return Relation(schema, [first, second])


def relation_to_assignment(relation: Relation) -> Dict[str, TruthValue]:
    """Read the assignment off a two-tuple relation (the inverse mapping).

    *unknown* is produced whenever at least one of the two values is null —
    including the both-null case, which the paper's "t[A] or t'[A] = null"
    covers.
    """
    if len(relation) != 2:
        raise ReproError(
            f"the bridge is defined on two-tuple relations, got {len(relation)}"
        )
    t, t_prime = relation.rows
    assignment: Dict[str, TruthValue] = {}
    for attr in relation.schema.attributes:
        mine, theirs = t[attr], t_prime[attr]
        if is_null(mine) or is_null(theirs):
            assignment[attr] = UNKNOWN
        elif mine == theirs:
            assignment[attr] = TRUE
        else:
            assignment[attr] = FALSE
    return assignment


def fd_strongly_holds_two_tuple(fd: FDInput, relation: Relation) -> bool:
    """Strong satisfaction of an FD on a two-tuple relation (Lemma 3 LHS)."""
    if len(relation) != 2:
        raise ReproError("Lemma 3 concerns two-tuple relations")
    return strongly_holds(as_fd(fd), relation)


def lemma3_agrees(
    fd: FDInput,
    assignment: Mapping[str, TruthValue],
    null_in_second: bool = True,
) -> bool:
    """One instance of Lemma 3: both sides of the iff, compared.

    Returns True when the FD's strong satisfaction in the realized relation
    coincides with ``V(X => Y, a) = true``.
    """
    fd = as_fd(fd)
    statement = ImplicationalStatement.from_fd(fd)
    relation = assignment_to_relation(assignment, null_in_second=null_in_second)
    left = fd_strongly_holds_two_tuple(fd, relation)
    right = statement.evaluate(assignment) is TRUE
    return left == right


def fd_counterexample_relation(
    premises: Iterable[FDInput],
    conclusion: FDInput,
    weak: bool = False,
) -> Optional[Relation]:
    """A two-tuple relation witnessing non-inference (Lemma 4 in action).

    Searches assignment space via the logic side, then realizes the witness
    as a relation: the premises all (strongly / not-falsely) hold in it
    while the conclusion does not.  Returns ``None`` when the inference is
    valid.
    """
    from .implicational import counterexample

    statements = [as_statement(as_fd(p)) for p in premises]
    goal = as_statement(as_fd(conclusion))
    witness = counterexample(statements, goal, weak=weak)
    if witness is None:
        return None
    return assignment_to_relation(witness)
