"""System C's evaluation scheme (section 5, rules 1-5).

Let ``P(p1, ..., pn)`` be a well-formed formula and ``a`` an assignment of
truth values (three-valued) to its variables.  ``V(P, a)`` is defined by:

1. if ``P`` is a tautology in classical two-valued logic, ``V(P) = true``;
2. if ``P = p_i``, then ``V(P) = a_i``;
3. if ``P = ¬Q``: true / false / unknown as ``V(Q)`` is false / true /
   unknown;
4. if ``P = Q ∨ S`` (resp. ``∧``): Kleene disjunction (conjunction);
5. if ``P = V Q``: true if ``V(Q) = true``, otherwise false.

Rule 1 is *always applied first*, at every recursion level — this is what
makes C non-truth-functional: ``p ∨ ¬p`` evaluates to true (it is a
tautology) even when ``a(p) = unknown`` would make the structural rules
answer unknown.

A C-*tautology* is a formula taking the value true under every (3-valued)
assignment; Bertram proved the axiomatization sound and complete for this
evaluation scheme, so :func:`is_c_tautology` doubles as a theoremhood
oracle for the fragment we need.
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterable, Iterator, Mapping, Optional, Tuple

from ..core.truth import FALSE, TRUE, UNKNOWN, TruthValue, and_, not_, or_
from .syntax import And, Formula, Nec, Not, Or, Var, variables_of
from .tautology import is_tautology

Assignment = Mapping[str, TruthValue]


def evaluate(formula: Formula, assignment: Assignment) -> TruthValue:
    """``V(P, a)`` — the evaluation scheme of System C.

    Raises ``KeyError`` if the formula mentions a variable the assignment
    does not cover (silent defaults would mask test bugs).
    """
    # Rule 1 first, at every level.
    if is_tautology(formula):
        return TRUE
    if isinstance(formula, Var):
        return assignment[formula.name]
    if isinstance(formula, Not):
        return not_(evaluate(formula.operand, assignment))
    if isinstance(formula, And):
        return and_(*(evaluate(op, assignment) for op in formula.operands))
    if isinstance(formula, Or):
        return or_(*(evaluate(op, assignment) for op in formula.operands))
    if isinstance(formula, Nec):
        inner = evaluate(formula.operand, assignment)
        return TRUE if inner is TRUE else FALSE
    raise TypeError(f"not a formula: {formula!r}")  # pragma: no cover


def evaluate_truth_functional(formula: Formula, assignment: Assignment) -> TruthValue:
    """The same recursion *without* rule 1 (pure Kleene + modal rule 5).

    Exposed to demonstrate C's non-truth-functionality: the paper's example
    is ``p ∨ ¬p``, true under :func:`evaluate` but unknown here when
    ``a(p) = unknown``.
    """
    if isinstance(formula, Var):
        return assignment[formula.name]
    if isinstance(formula, Not):
        return not_(evaluate_truth_functional(formula.operand, assignment))
    if isinstance(formula, And):
        return and_(
            *(evaluate_truth_functional(op, assignment) for op in formula.operands)
        )
    if isinstance(formula, Or):
        return or_(
            *(evaluate_truth_functional(op, assignment) for op in formula.operands)
        )
    if isinstance(formula, Nec):
        inner = evaluate_truth_functional(formula.operand, assignment)
        return TRUE if inner is TRUE else FALSE
    raise TypeError(f"not a formula: {formula!r}")  # pragma: no cover


def assignments_over(names: Iterable[str]) -> Iterator[Dict[str, TruthValue]]:
    """All ``3^n`` three-valued assignments over the given variables."""
    names = tuple(names)
    for combo in itertools.product((TRUE, FALSE, UNKNOWN), repeat=len(names)):
        yield dict(zip(names, combo))


def is_c_tautology(
    formula: Formula, variables: Optional[Tuple[str, ...]] = None
) -> bool:
    """True when ``V(P, a) = true`` for *every* three-valued assignment."""
    names = variables if variables is not None else variables_of(formula)
    return all(
        evaluate(formula, assignment) is TRUE
        for assignment in assignments_over(names)
    )
