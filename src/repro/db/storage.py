"""On-disk layout and atomic file primitives for :mod:`repro.db`.

A database is a directory::

    <path>/
      MANIFEST.json            {"format": 1, "relations": ["people", ...]}
      relations/<name>/
        schema.json            {"format": 1, "schema": ..., "fds": [...]}
        wal.jsonl              append-only op log since the last checkpoint
        checkpoint.json        {"format": 1, "seq": N, "next_null": M,
                                "rows": [[...], ...]}

Every non-appending write (manifest, schema, checkpoint) goes through
:func:`write_json_atomic`: serialize to a temp file in the same directory,
``fsync``, then ``os.replace`` — so a crash at any instant leaves either
the old file or the new one, never a torn hybrid.  The op log is the only
file that is appended in place; its torn-tail tolerance lives in
:mod:`repro.db.log`.

JSON is always rendered with sorted keys and compact separators: byte
determinism is part of the storage contract (two runs of the same op
script must produce identical files — pinned by ``tests/db/test_codec.py``).
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from ..errors import DatabaseError

FORMAT = 1

MANIFEST_NAME = "MANIFEST.json"
RELATIONS_DIR = "relations"
SCHEMA_NAME = "schema.json"
WAL_NAME = "wal.jsonl"
CHECKPOINT_NAME = "checkpoint.json"


def dump_json(payload: dict) -> str:
    """The canonical (byte-deterministic) JSON rendering."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def write_json_atomic(path: Path, payload: dict, fsync: bool = True) -> None:
    """Write ``payload`` so a crash leaves either the old or the new file."""
    tmp = path.with_name(path.name + ".tmp")
    data = dump_json(payload) + "\n"
    with open(tmp, "w", encoding="utf-8") as handle:
        handle.write(data)
        handle.flush()
        if fsync:
            os.fsync(handle.fileno())
    os.replace(tmp, path)
    if fsync:
        fsync_dir(path.parent)


def read_json(path: Path, what: str) -> dict:
    """Load a JSON object, wrapping failures as :class:`DatabaseError`."""
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except OSError as error:
        raise DatabaseError(f"cannot read {what} at {path}: {error}") from None
    except json.JSONDecodeError as error:
        raise DatabaseError(f"corrupt {what} at {path}: {error}") from None
    if not isinstance(payload, dict):
        raise DatabaseError(f"corrupt {what} at {path}: not a JSON object")
    return payload


def check_format(payload: dict, what: str) -> None:
    if payload.get("format") != FORMAT:
        raise DatabaseError(
            f"{what} declares format {payload.get('format')!r}; this library "
            f"reads format {FORMAT}"
        )


def fsync_dir(path: Path) -> None:
    """Flush a directory entry (rename durability); best-effort on
    filesystems that refuse directory fds."""
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform-dependent
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - platform-dependent
        pass
    finally:
        os.close(fd)


def relation_dir(root: Path, name: str) -> Path:
    return root / RELATIONS_DIR / name
