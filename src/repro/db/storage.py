"""On-disk layout and atomic file primitives for :mod:`repro.db`.

A database is a directory::

    <path>/
      MANIFEST.json            {"format": 1, "relations": ["people", ...]}
      .lock                    flock target guarding init/catalog races
      relations/<name>/
        schema.json            {"format": 1, "schema": ..., "fds": [...]}
        wal.jsonl              append-only op log since the last checkpoint
        checkpoint.json        {"format": 1, "seq": N, "next_null": M,
                                "rows": [[...], ...]}

Every non-appending write (manifest, schema, checkpoint) goes through
:func:`write_json_atomic`: serialize to a temp file in the same directory,
``fsync``, then ``os.replace`` — so a crash at any instant leaves either
the old file or the new one, never a torn hybrid.  The op log is the only
file that is appended in place; its torn-tail tolerance lives in
:mod:`repro.db.log`.

JSON is always rendered with sorted keys and compact separators: byte
determinism is part of the storage contract (two runs of the same op
script must produce identical files — pinned by ``tests/db/test_codec.py``).
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Optional, TextIO

from ..errors import DatabaseError

try:
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platforms
    fcntl = None  # type: ignore[assignment]

FORMAT = 1

MANIFEST_NAME = "MANIFEST.json"
RELATIONS_DIR = "relations"
SCHEMA_NAME = "schema.json"
WAL_NAME = "wal.jsonl"
CHECKPOINT_NAME = "checkpoint.json"
LOCK_NAME = ".lock"

#: how long :meth:`DirectoryLock.acquire` waits for a contended lock
#: before raising (module-level so tests can shrink it)
LOCK_TIMEOUT_S = 5.0


class DirectoryLock:
    """An advisory exclusive lock on a database directory.

    Guards the windows where two handles racing on one directory corrupt
    it: initialization (two ``open(create=True)`` calls both writing the
    manifest), catalog mutation (``create``/``drop`` rewriting the
    manifest), and — for a long-lived owner like ``repro serve`` — the
    whole session.  Implemented as ``flock`` on ``<root>/.lock``:
    advisory, conflicting even between two handles in one process, and
    crash-safe — the kernel drops the lock with the file descriptor, so
    a SIGKILLed owner never leaves a stale lock behind.  On platforms
    without ``fcntl`` the lock degrades to a no-op.
    """

    def __init__(self, root: Path) -> None:
        self.path = root / LOCK_NAME
        self._handle: Optional[TextIO] = None

    @property
    def held(self) -> bool:
        return self._handle is not None

    def acquire(self, timeout_s: Optional[float] = None) -> None:
        if fcntl is None:  # pragma: no cover - non-POSIX platforms
            return
        if self._handle is not None:
            raise DatabaseError(f"lock on {self.path.parent} is already held")
        handle = open(self.path, "a")
        if timeout_s is None:
            timeout_s = LOCK_TIMEOUT_S
        deadline = time.monotonic() + timeout_s
        while True:
            try:
                fcntl.flock(handle.fileno(), fcntl.LOCK_EX | fcntl.LOCK_NB)
            except OSError:
                if time.monotonic() >= deadline:
                    handle.close()
                    raise DatabaseError(
                        f"database at {self.path.parent} is locked by another "
                        "process or handle; close that handle (or its server) "
                        "first"
                    ) from None
                time.sleep(0.02)
            else:
                self._handle = handle
                return

    def release(self) -> None:
        handle = self._handle
        if handle is None:
            return
        self._handle = None
        try:
            if fcntl is not None:  # pragma: no branch
                fcntl.flock(handle.fileno(), fcntl.LOCK_UN)
        finally:
            handle.close()


def dump_json(payload: dict) -> str:
    """The canonical (byte-deterministic) JSON rendering."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def write_json_atomic(path: Path, payload: dict, fsync: bool = True) -> None:
    """Write ``payload`` so a crash leaves either the old or the new file."""
    tmp = path.with_name(path.name + ".tmp")
    data = dump_json(payload) + "\n"
    with open(tmp, "w", encoding="utf-8") as handle:
        handle.write(data)
        handle.flush()
        if fsync:
            os.fsync(handle.fileno())
    os.replace(tmp, path)
    if fsync:
        fsync_dir(path.parent)


def read_json(path: Path, what: str) -> dict:
    """Load a JSON object, wrapping failures as :class:`DatabaseError`."""
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except OSError as error:
        raise DatabaseError(f"cannot read {what} at {path}: {error}") from None
    except json.JSONDecodeError as error:
        raise DatabaseError(f"corrupt {what} at {path}: {error}") from None
    if not isinstance(payload, dict):
        raise DatabaseError(f"corrupt {what} at {path}: not a JSON object")
    return payload


def check_format(payload: dict, what: str) -> None:
    if payload.get("format") != FORMAT:
        raise DatabaseError(
            f"{what} declares format {payload.get('format')!r}; this library "
            f"reads format {FORMAT}"
        )


def fsync_dir(path: Path) -> None:
    """Flush a directory entry (rename durability); best-effort on
    filesystems that refuse directory fds."""
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform-dependent
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - platform-dependent
        pass
    finally:
        os.close(fd)


def relation_dir(root: Path, name: str) -> Path:
    return root / RELATIONS_DIR / name
