"""Durable multi-relation storage for chase sessions (write-ahead op log,
crash recovery, checkpoints).

The paper's Theorem-4 fixpoint survives the process here: each named
relation of a :class:`Database` is a live
:class:`~repro.chase.session.ChaseSession` whose op stream is journalled
*before* application and replayed on :meth:`Database.open`.  Persisting
the op log (rather than a naive row dump) is what keeps the null-marker
semantics canonical end-to-end — shared nulls, forced substitutions and
NOTHING states all round-trip exactly, because recovery re-derives them
through the same NS-rule engine that produced them.

Module map:

* :mod:`repro.db.database` — :class:`Database` / :class:`ManagedRelation`,
  the public API;
* :mod:`repro.db.log` — the JSONL write-ahead log (append, torn-tail
  scan, op-record codec);
* :mod:`repro.db.storage` — directory layout and atomic file writes;
* :mod:`repro.db.recovery` — replay of log records over a
  checkpoint-restored session, plus the recovery verifier.

Canonical null identity (the serialization layer both the log and
checkpoints share) lives one level down, in :mod:`repro.core.codec`.
"""

from .database import Database, ManagedRelation
from .log import (
    SYNC_FLUSH,
    SYNC_FSYNC,
    SYNC_MODES,
    SYNC_NONE,
    GroupCommitter,
    OpLog,
)
from .recovery import verify_fixpoint
from .storage import DirectoryLock

__all__ = [
    "Database",
    "DirectoryLock",
    "GroupCommitter",
    "ManagedRelation",
    "OpLog",
    "SYNC_FLUSH",
    "SYNC_FSYNC",
    "SYNC_MODES",
    "SYNC_NONE",
    "verify_fixpoint",
]
