"""The write-ahead op log: JSONL append, torn-tail scan, op-record codec.

One line per op record, appended *before* the op is applied to the
in-memory session (the session's :attr:`~repro.chase.session.ChaseSession.on_op`
hook fires after validation, before any engine mutation).  Each record
carries a monotonically increasing ``seq``; checkpoints remember the seq
they cover, which makes recovery idempotent across the
checkpoint-written-but-log-not-yet-truncated crash window (stale records
are skipped by seq, never re-applied).

Crash anatomy of an append-only text log:

* a crash *between* ops leaves whole lines — every record replays;
* a crash *mid-append* leaves one torn final line — :func:`scan` detects
  it (no newline, or JSON that does not parse) and reports the byte
  offset of the last good record so recovery can truncate it away.  The
  op it belonged to never applied in memory either (journal-then-apply),
  so dropping it is exactly right;
* garbage *before* intact records is real corruption and raises
  :class:`~repro.errors.DatabaseError` — silently resynchronizing could
  drop acknowledged writes.

The serving layer (:mod:`repro.server`) journals through
:class:`GroupCommitter` instead of per-op :meth:`OpLog.append`: op
records from a burst of concurrent clients are batched into a single
:meth:`OpLog.append_many` — one write, one flush, one fsync — and each
client's future completes only after its batch is durable.  The same
torn-tail anatomy applies: a batch is appended as consecutive whole
lines, so a crash mid-batch leaves a whole-record prefix (plus at most
one torn final record, detected and dropped exactly as above).
"""

from __future__ import annotations

import asyncio
import json
import os
from pathlib import Path
from typing import Any, Callable, List, Optional, Sequence, Tuple

from ..core.codec import ValueCodec
from ..errors import CodecError, DatabaseError
from .storage import dump_json

SYNC_NONE = "none"
SYNC_FLUSH = "flush"
SYNC_FSYNC = "fsync"
SYNC_MODES = (SYNC_NONE, SYNC_FLUSH, SYNC_FSYNC)

#: ops that carry no operands beyond the op name itself
_BARE_OPS = ("adopt", "snapshot", "rollback", "discard")


class OpLog:
    """An append handle on one relation's ``wal.jsonl``.

    ``sync`` picks the durability point of each append: ``"fsync"``
    (default — survives power loss), ``"flush"`` (survives process death,
    not power loss), or ``"none"`` (buffered; throughput benchmarking).
    """

    def __init__(self, path: Path, sync: str = SYNC_FSYNC) -> None:
        if sync not in SYNC_MODES:
            raise DatabaseError(f"unknown sync mode {sync!r}; use {SYNC_MODES}")
        self.path = path
        self.sync = sync
        self._handle = open(path, "a", encoding="utf-8")

    def append(self, payload: dict) -> None:
        handle = self._handle
        mark = handle.tell()
        try:
            handle.write(dump_json(payload) + "\n")
            if self.sync != SYNC_NONE:
                handle.flush()
                if self.sync == SYNC_FSYNC:
                    os.fsync(handle.fileno())
        except Exception:
            # the op this record announces will now abort unapplied, so
            # any bytes that did land must not survive: a partial line
            # would read as corruption (records after it) and a whole one
            # would replay an op that was reported as failed
            try:
                handle.truncate(mark)
            except OSError:  # pragma: no cover - double-fault: leave torn
                pass
            raise

    def append_many(self, payloads: Sequence[dict]) -> None:
        """Append a batch of records with one write and one sync point.

        The whole blob is encoded before any byte lands, so an
        unencodable record aborts with the log untouched.  On a failed
        write/sync every byte of the batch is truncated away: the ops
        these records announce are being reported as failed (group
        commit resolves client futures only after this returns), so a
        surviving partial batch would either read as corruption or
        replay ops that were never acknowledged.
        """
        if not payloads:
            return
        blob = "".join(dump_json(payload) + "\n" for payload in payloads)
        handle = self._handle
        mark = handle.tell()
        try:
            handle.write(blob)
            if self.sync != SYNC_NONE:
                handle.flush()
                if self.sync == SYNC_FSYNC:
                    os.fsync(handle.fileno())
        except Exception:
            try:
                handle.truncate(mark)
            except OSError:  # pragma: no cover - double-fault: leave torn
                pass
            raise

    def truncate(self) -> None:
        """Drop every record (a checkpoint now covers them)."""
        handle = self._handle
        handle.flush()
        handle.seek(0)
        handle.truncate()
        if self.sync == SYNC_FSYNC:
            os.fsync(handle.fileno())

    def close(self) -> None:
        if not self._handle.closed:
            self._handle.flush()
            self._handle.close()


class GroupCommitter:
    """Latch bursts of op records into single WAL appends.

    The serving layer's per-relation writer journals through
    :meth:`stage` instead of :meth:`OpLog.append`: records accumulate
    while the event loop applies a burst of client ops, and a background
    flusher task appends the whole batch with **one** write + flush +
    fsync (:meth:`OpLog.append_many`), completing each record's future
    only after its batch is durable.  Under N concurrent clients the
    per-op sync cost becomes a per-burst one.

    Group commit relaxes journal-before-apply to *stage-before-apply,
    durable-before-ack*: a record is staged (in log order) before its op
    mutates the session, but only becomes durable at the batch sync.  A
    crash may therefore lose applied-but-unsynced ops — which is exactly
    safe, because their clients were never acknowledged; recovery yields
    a whole-record prefix of the staged order that contains every acked
    op (the crash-injection suite pins this at every batch boundary).

    ``window_s`` latches the batch window: the flusher waits that long
    after waking before committing, letting more of a burst land.  The
    default ``0`` yields the event loop once — whatever the current
    sweep of ready callbacks stages forms the batch.  ``max_batch`` caps
    records per append.

    A failed append fails every staged future and **poisons** the
    committer (:attr:`failed`): the in-memory session is now ahead of a
    log that cannot be extended contiguously, so the owner must stop
    accepting ops (the server's writer does, and the failed batch was
    truncated away whole, so the log on disk stays readable).

    ``on_commit(payloads)`` runs after each batch is durable and before
    any of its futures resolve — the crash-injection suite's kill point.
    """

    def __init__(
        self,
        wal: OpLog,
        window_s: float = 0.0,
        max_batch: int = 512,
        on_commit: Optional[Callable[[List[dict]], None]] = None,
    ) -> None:
        self.wal = wal
        self.window_s = window_s
        self.max_batch = max(1, int(max_batch))
        self.on_commit = on_commit
        self.failed: Optional[BaseException] = None
        self.batches = 0
        self.records = 0
        self.largest_batch = 0
        self._pending: List[Tuple[dict, "asyncio.Future"]] = []
        self._wake: Optional[asyncio.Event] = None
        self._task: Optional["asyncio.Task"] = None
        self._last: Optional["asyncio.Future"] = None
        self._closed = False

    async def start(self) -> None:
        self._wake = asyncio.Event()
        self._task = asyncio.get_running_loop().create_task(self._run())

    def stage(self, payload: dict) -> "asyncio.Future":
        """Queue one record; the future resolves when it is durable."""
        if self.failed is not None:
            raise DatabaseError(
                f"group committer poisoned by earlier append failure: {self.failed}"
            )
        if self._task is None or self._closed:
            raise DatabaseError("group committer is not running")
        future = asyncio.get_running_loop().create_future()
        self._pending.append((payload, future))
        self._last = future
        self._wake.set()
        return future

    async def drain(self) -> None:
        """Wait until every record staged so far is durable.

        Raises the append failure if the batch containing a staged
        record could not be made durable.
        """
        while self._pending or (self._last is not None and not self._last.done()):
            await asyncio.shield(self._last)

    async def close(self) -> None:
        """Flush whatever is pending, then stop the flusher task."""
        self._closed = True
        if self._wake is not None:
            self._wake.set()
        if self._task is not None:
            await self._task
            self._task = None

    def stats(self) -> dict:
        return {
            "batches": self.batches,
            "batched_records": self.records,
            "largest_batch": self.largest_batch,
            "pending": len(self._pending),
        }

    async def _run(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            if not self._pending:
                if self._closed:
                    return
                self._wake.clear()
                await self._wake.wait()
                continue
            if self.window_s > 0:
                await asyncio.sleep(self.window_s)
            else:
                await asyncio.sleep(0)
            batch = self._pending[: self.max_batch]
            del self._pending[: len(batch)]
            payloads = [payload for payload, _ in batch]
            try:
                if self.wal.sync == SYNC_NONE:
                    # no sync point to amortize: stay on the loop
                    self.wal.append_many(payloads)
                else:
                    await loop.run_in_executor(None, self.wal.append_many, payloads)
            except Exception as error:
                self.failed = error
                failure = DatabaseError(f"group-commit append failed: {error}")
                failure.__cause__ = error
                for _, future in batch + self._pending:
                    if not future.done():
                        future.set_exception(failure)
                self._pending.clear()
                continue  # stay alive so stage()/drain() report the poisoning
            self.batches += 1
            self.records += len(payloads)
            self.largest_batch = max(self.largest_batch, len(payloads))
            if self.on_commit is not None:
                self.on_commit(payloads)
            for _, future in batch:
                if not future.done():
                    future.set_result(True)


def scan(path: Path) -> Tuple[List[dict], int, bool]:
    """Read a log: ``(records, good_bytes, torn_tail_dropped)``.

    ``good_bytes`` is the byte length of the well-formed prefix; when a
    torn final record was detected the caller truncates the file there.
    """
    try:
        blob = path.read_bytes()
    except FileNotFoundError:
        return [], 0, False
    records: List[dict] = []
    offset = 0
    torn = False
    while offset < len(blob):
        newline = blob.find(b"\n", offset)
        if newline < 0:
            torn = True  # mid-append crash: no terminator
            break
        line = blob[offset:newline]
        try:
            record = json.loads(line)
            if not isinstance(record, dict):
                raise ValueError("not an object")
        except ValueError:
            if blob[newline + 1 :].strip():
                raise DatabaseError(
                    f"corrupt op log {path}: unreadable record at byte "
                    f"{offset} with intact records after it"
                ) from None
            torn = True  # torn line that happened to contain a newline byte
            break
        records.append(record)
        offset = newline + 1
    return records, offset, torn


# ---------------------------------------------------------------------------
# op-record codec (the session's replay vocabulary <-> JSON payloads)
# ---------------------------------------------------------------------------


def encode_op(seq: int, record: tuple, codec: ValueCodec) -> dict:
    """One session op record as a log payload."""
    op = record[0]
    payload: dict = {"seq": seq, "op": op}
    if op == "insert":
        payload["row"] = codec.encode_row(record[1])
    elif op == "delete":
        payload["index"] = record[1]
    elif op == "update":
        payload["index"] = record[1]
        payload["set"] = {
            attr: codec.encode(value) for attr, value in record[2].items()
        }
    elif op == "replace":
        payload["index"] = record[1]
        payload["row"] = codec.encode_row(record[2])
    elif op == "fill":
        payload["index"] = record[1]
        payload["attr"] = record[2]
        payload["value"] = codec.encode(record[3])
    elif op == "reset":
        payload["rows"] = [codec.encode_row(row) for row in record[1]]
    elif op not in _BARE_OPS:
        raise CodecError(f"unknown session op record {record!r}")
    return payload


def describe(payload: dict) -> str:
    """A short human label for a log record (error messages, ``db stats``)."""
    return f"#{payload.get('seq', '?')} {payload.get('op', '?')}"
