"""The write-ahead op log: JSONL append, torn-tail scan, op-record codec.

One line per op record, appended *before* the op is applied to the
in-memory session (the session's :attr:`~repro.chase.session.ChaseSession.on_op`
hook fires after validation, before any engine mutation).  Each record
carries a monotonically increasing ``seq``; checkpoints remember the seq
they cover, which makes recovery idempotent across the
checkpoint-written-but-log-not-yet-truncated crash window (stale records
are skipped by seq, never re-applied).

Crash anatomy of an append-only text log:

* a crash *between* ops leaves whole lines — every record replays;
* a crash *mid-append* leaves one torn final line — :func:`scan` detects
  it (no newline, or JSON that does not parse) and reports the byte
  offset of the last good record so recovery can truncate it away.  The
  op it belonged to never applied in memory either (journal-then-apply),
  so dropping it is exactly right;
* garbage *before* intact records is real corruption and raises
  :class:`~repro.errors.DatabaseError` — silently resynchronizing could
  drop acknowledged writes.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, List, Tuple

from ..core.codec import ValueCodec
from ..errors import CodecError, DatabaseError
from .storage import dump_json

SYNC_NONE = "none"
SYNC_FLUSH = "flush"
SYNC_FSYNC = "fsync"
SYNC_MODES = (SYNC_NONE, SYNC_FLUSH, SYNC_FSYNC)

#: ops that carry no operands beyond the op name itself
_BARE_OPS = ("adopt", "snapshot", "rollback", "discard")


class OpLog:
    """An append handle on one relation's ``wal.jsonl``.

    ``sync`` picks the durability point of each append: ``"fsync"``
    (default — survives power loss), ``"flush"`` (survives process death,
    not power loss), or ``"none"`` (buffered; throughput benchmarking).
    """

    def __init__(self, path: Path, sync: str = SYNC_FSYNC) -> None:
        if sync not in SYNC_MODES:
            raise DatabaseError(f"unknown sync mode {sync!r}; use {SYNC_MODES}")
        self.path = path
        self.sync = sync
        self._handle = open(path, "a", encoding="utf-8")

    def append(self, payload: dict) -> None:
        handle = self._handle
        mark = handle.tell()
        try:
            handle.write(dump_json(payload) + "\n")
            if self.sync != SYNC_NONE:
                handle.flush()
                if self.sync == SYNC_FSYNC:
                    os.fsync(handle.fileno())
        except Exception:
            # the op this record announces will now abort unapplied, so
            # any bytes that did land must not survive: a partial line
            # would read as corruption (records after it) and a whole one
            # would replay an op that was reported as failed
            try:
                handle.truncate(mark)
            except OSError:  # pragma: no cover - double-fault: leave torn
                pass
            raise

    def truncate(self) -> None:
        """Drop every record (a checkpoint now covers them)."""
        handle = self._handle
        handle.flush()
        handle.seek(0)
        handle.truncate()
        if self.sync == SYNC_FSYNC:
            os.fsync(handle.fileno())

    def close(self) -> None:
        if not self._handle.closed:
            self._handle.flush()
            self._handle.close()


def scan(path: Path) -> Tuple[List[dict], int, bool]:
    """Read a log: ``(records, good_bytes, torn_tail_dropped)``.

    ``good_bytes`` is the byte length of the well-formed prefix; when a
    torn final record was detected the caller truncates the file there.
    """
    try:
        blob = path.read_bytes()
    except FileNotFoundError:
        return [], 0, False
    records: List[dict] = []
    offset = 0
    torn = False
    while offset < len(blob):
        newline = blob.find(b"\n", offset)
        if newline < 0:
            torn = True  # mid-append crash: no terminator
            break
        line = blob[offset:newline]
        try:
            record = json.loads(line)
            if not isinstance(record, dict):
                raise ValueError("not an object")
        except ValueError:
            if blob[newline + 1 :].strip():
                raise DatabaseError(
                    f"corrupt op log {path}: unreadable record at byte "
                    f"{offset} with intact records after it"
                ) from None
            torn = True  # torn line that happened to contain a newline byte
            break
        records.append(record)
        offset = newline + 1
    return records, offset, torn


# ---------------------------------------------------------------------------
# op-record codec (the session's replay vocabulary <-> JSON payloads)
# ---------------------------------------------------------------------------


def encode_op(seq: int, record: tuple, codec: ValueCodec) -> dict:
    """One session op record as a log payload."""
    op = record[0]
    payload: dict = {"seq": seq, "op": op}
    if op == "insert":
        payload["row"] = codec.encode_row(record[1])
    elif op == "delete":
        payload["index"] = record[1]
    elif op == "update":
        payload["index"] = record[1]
        payload["set"] = {
            attr: codec.encode(value) for attr, value in record[2].items()
        }
    elif op == "replace":
        payload["index"] = record[1]
        payload["row"] = codec.encode_row(record[2])
    elif op == "fill":
        payload["index"] = record[1]
        payload["attr"] = record[2]
        payload["value"] = codec.encode(record[3])
    elif op == "reset":
        payload["rows"] = [codec.encode_row(row) for row in record[1]]
    elif op not in _BARE_OPS:
        raise CodecError(f"unknown session op record {record!r}")
    return payload


def describe(payload: dict) -> str:
    """A short human label for a log record (error messages, ``db stats``)."""
    return f"#{payload.get('seq', '?')} {payload.get('op', '?')}"
