"""``repro.Database``: durable, multi-relation sessions.

The top-level durable API.  A database is a directory of named relations,
each backed by a live :class:`~repro.chase.session.ChaseSession` plus a
write-ahead op log:

* every mutation (insert / delete / update / replace / fill / reset /
  adopt, plus the snapshot/rollback pair) is **journalled before it is
  applied** — the session's op-record hook fires after validation, the
  managed relation appends the encoded record to ``wal.jsonl``, and only
  then does the engine mutate;
* :meth:`Database.open` recovers each relation by loading the last
  checkpoint (raw rows + canonical null identity) and replaying the log
  tail through the ordinary mutator vocabulary — so shared nulls, forced
  substitutions and NOTHING states round-trip exactly;
* :meth:`Database.checkpoint` snapshots the raw rows (with canonical null
  ids, so the sharing structure survives) and truncates the log; a crash
  between the checkpoint write and the log truncation is harmless because
  recovery skips records the checkpoint already covers (by ``seq``).

Usage::

    from repro import Database

    with Database.open("/var/lib/fds") as db:
        people = db.create("people", "name zip city", ["zip -> city"])
        people.insert(("Ada", "10001", "New York"))
        people.insert(("Bob", "10001", null()))   # grounded by the chase
        db.checkpoint()

    db = Database.open("/var/lib/fds")            # after any crash
    db["people"].result().relation                # identical fixpoint
"""

from __future__ import annotations

import contextlib
import re
import shutil
from pathlib import Path
from typing import Any, Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Union

from ..chase.session import ChaseSession, SessionSnapshot
from ..core.codec import (
    ValueCodec,
    fds_from_spec,
    fds_to_spec,
    schema_from_spec,
    schema_to_spec,
)
from ..core.domain import Domain
from ..core.fd import FDInput
from ..core.relation import Relation
from ..core.schema import RelationSchema
from ..core.tuples import Row
from ..errors import DatabaseError
from . import log as oplog
from . import storage
from .log import OpLog, SYNC_FSYNC, SYNC_MODES
from .recovery import replay, verify_fixpoint

_NAME = re.compile(r"^[A-Za-z0-9_][A-Za-z0-9_.-]*$")


class ManagedRelation:
    """One named relation of a :class:`Database`: a chase session whose
    every mutation is journalled to a write-ahead op log.

    The session's full vocabulary is proxied (`insert`, `delete`,
    `update`, `replace`, `fill`, `reset`, `adopt`, `check`, `result`,
    `has_nothing`, `explain`); :meth:`snapshot` / :meth:`rollback` are a
    journalled LIFO pair (depth-returning, so scripts can nest them).
    The underlying session is reachable as :attr:`session` — but bypassing
    the proxy for *mutations* is safe too: the journal hook lives on the
    session itself.  Only ``session.snapshot()``/``session.rollback()``
    must not be called directly on a managed relation (they would not be
    journalled; use the proxy pair).
    """

    def __init__(
        self,
        name: str,
        directory: Path,
        session: ChaseSession,
        codec: ValueCodec,
        wal: OpLog,
        seq: int,
        checkpoint_seq: int,
        recovery_info: Optional[dict] = None,
        snapshots: Optional[List[SessionSnapshot]] = None,
    ) -> None:
        self.name = name
        self._dir = directory
        self.session = session
        self._codec = codec
        self._wal = wal
        self._seq = seq
        self._checkpoint_seq = checkpoint_seq
        #: the journalled snapshot stack — recovery rebuilds it from the
        #: replayed ``snapshot``/``rollback`` records, so a snapshot
        #: outstanding at crash time can still be rolled back
        self._snapshots: List[SessionSnapshot] = snapshots or []
        #: how the relation came back: {"replayed", "torn_tail_dropped",
        #: "checkpoint_seq", "rows"} — surfaced by ``repro db recover``
        self.recovery_info = recovery_info or {
            "replayed": 0,
            "torn_tail_dropped": False,
            "checkpoint_seq": checkpoint_seq,
            "rows": len(session),
        }
        #: where encoded op records go.  The default appends (and syncs)
        #: each record directly; the serving layer repoints this at a
        #: :class:`~repro.db.log.GroupCommitter` stage so a burst of ops
        #: shares one sync — see :mod:`repro.server.writer`.
        self.journal_sink = wal.append
        session.on_op = self._journal

    # -- journaling --------------------------------------------------------

    def _journal(self, record: tuple) -> None:
        """The session op-record hook: encode, then hand to the sink.

        Raises (aborting the op before it applies) if the value cannot be
        encoded or the sink rejects the record — write-ahead means no
        record, no op.
        """
        payload = oplog.encode_op(self._seq + 1, record, self._codec)
        self.journal_sink(payload)
        self._seq += 1

    @property
    def wal(self) -> OpLog:
        """The relation's op-log handle (the group committer's target)."""
        return self._wal

    @property
    def seq(self) -> int:
        """Ops journalled over the relation's lifetime."""
        return self._seq

    @property
    def checkpoint_seq(self) -> int:
        """The seq the on-disk checkpoint covers."""
        return self._checkpoint_seq

    @property
    def outstanding_snapshots(self) -> int:
        return len(self._snapshots)

    def encode_value(self, value: Any) -> Any:
        """Encode one cell in the relation's canonical wire/log form."""
        return self._codec.encode(value)

    def decode_value(self, token: Any) -> Any:
        """Decode one wire/log cell token (shared nulls keep identity)."""
        return self._codec.decode(token)

    def knows_null(self, canonical: str) -> bool:
        """Has this relation's codec scope ever named this null id?
        (Static check only — decoding stays lenient.)"""
        return self._codec.knows(canonical)

    # -- mutation proxies --------------------------------------------------

    def insert(self, values: Sequence[Any] | Row) -> int:
        return self.session.insert(values)

    def delete(self, index: int) -> None:
        self.session.delete(index)

    def update(self, index: int, changes: Mapping[str, Any]) -> None:
        self.session.update(index, changes)

    def replace(self, index: int, values: Sequence[Any] | Row) -> None:
        self.session.replace(index, values)

    def fill(self, index: int, attribute: str, value: Any) -> None:
        self.session.fill(index, attribute, value)

    def reset(self, rows: Iterable[Sequence[Any] | Row]) -> None:
        self.session.reset(rows)

    def adopt(self) -> dict:
        return self.session.adopt()

    def snapshot(self) -> int:
        """Journal and push a checkpointable mark; returns the stack depth."""
        self._journal(("snapshot",))
        self._snapshots.append(self.session.snapshot())
        return len(self._snapshots)

    def rollback(self) -> int:
        """Journal and restore the most recent :meth:`snapshot`; returns
        the depth of the snapshot that was restored."""
        if not self._snapshots:
            raise DatabaseError(f"{self.name}: rollback without a snapshot")
        self._journal(("rollback",))
        self.session.rollback(self._snapshots.pop())
        return len(self._snapshots) + 1

    def discard_snapshots(self) -> int:
        """Journal and drop every outstanding snapshot *without* rolling
        back (the state keeps everything since); returns how many were
        discarded.  This is what unblocks :meth:`checkpoint` when a
        snapshot was taken and never rolled back."""
        if not self._snapshots:
            return 0
        self._journal(("discard",))
        discarded = len(self._snapshots)
        self._snapshots.clear()
        return discarded

    # -- read proxies ------------------------------------------------------

    def result(self):
        """The maintained fixpoint, stamped with the relation's journal
        cut (``as_of`` = ops journalled so far) per the unified answer
        schema (:mod:`repro.api`)."""
        return self.session.result().at(self.seq)

    def check(self, *args, **kwargs):
        """TEST-FDs, stamped with the relation's journal cut."""
        return self.session.check(*args, **kwargs).at(self.seq)

    def explain(self) -> str:
        return self.session.explain()

    @property
    def has_nothing(self) -> bool:
        return self.session.has_nothing

    @property
    def rows(self):
        return self.session.rows

    def raw_relation(self) -> Relation:
        return self.session.raw_relation()

    def __len__(self) -> int:
        return len(self.session)

    def stats(self) -> Dict[str, int]:
        """Session op-outcome counters plus the durable ones: ``rows``,
        ``seq`` (ops journalled ever), ``checkpoint_seq`` (ops covered by
        the checkpoint) and ``wal_ops`` (log tail a crash would replay)."""
        merged = self.session.stats()
        merged.update(
            rows=len(self.session),
            seq=self._seq,
            checkpoint_seq=self._checkpoint_seq,
            wal_ops=self._seq - self._checkpoint_seq,
        )
        return merged

    def verify(self, workers: Optional[int] = None) -> bool:
        """The recovery acceptance check: maintained fixpoint ==
        from-scratch chase of the raw rows, field-identically.
        ``workers`` routes the reference chase through the sharded
        parallel executor (default: the session's own setting)."""
        return verify_fixpoint(self.session, workers=workers)

    def audit(self) -> None:
        """One sanitizer sweep over this relation, explicitly.

        Runs :func:`repro.analysis.sanitize.audit_relation` — the session
        audit plus the durable bookkeeping (``checkpoint_seq <= seq``, WAL
        record/seq contiguity in direct-append mode) — regardless of the
        ``REPRO_SANITIZE`` flag.  Raises
        :class:`~repro.errors.SanitizerError` on the first violation.
        """
        from ..analysis.sanitize import audit_relation

        audit_relation(self)

    # -- checkpointing -----------------------------------------------------

    def checkpoint(self) -> int:
        """Snapshot raw rows + null identity; truncate the log.

        Returns the number of log records the checkpoint absorbed.  The
        write order (checkpoint file atomically replaced *before* the log
        truncates) makes every crash window safe: old checkpoint + full
        log, or new checkpoint + stale log (skipped by seq), or new
        checkpoint + empty log.

        Refused while a :meth:`snapshot` is outstanding: a checkpoint
        records only the *current* state, so absorbing the snapshot's
        record would leave its later ``rollback`` nothing to restore —
        recovery of such a log could never reproduce the pre-snapshot
        state.  Roll back or discard the snapshots first.

        When :attr:`journal_sink` points at a group committer, the owner
        must drain staged records before checkpointing (the server's
        writer does): truncating the log under an in-flight batch append
        would interleave the two on one file handle.
        """
        if self._snapshots:
            raise DatabaseError(
                f"{self.name}: checkpoint with {len(self._snapshots)} "
                "outstanding snapshot(s); roll back (or discard) first — "
                "a checkpoint cannot absorb a snapshot a later rollback "
                "still needs"
            )
        codec = self._codec
        payload = {
            "format": storage.FORMAT,
            "seq": self._seq,
            "rows": [codec.encode_row(row.values) for row in self.session.rows],
            "next_null": codec.null_counter,
        }
        fsync = self._wal.sync == SYNC_FSYNC
        storage.write_json_atomic(
            self._dir / storage.CHECKPOINT_NAME, payload, fsync=fsync
        )
        absorbed = self._seq - self._checkpoint_seq
        self._wal.truncate()
        self._checkpoint_seq = self._seq
        from ..analysis import sanitize  # local: keeps the layer import-light

        if sanitize.enabled():
            sanitize.audit_relation(self)
        return absorbed

    def close(self) -> None:
        self._wal.close()
        self.session.on_op = None


class Database:
    """A directory of durable, independently-logged chase relations.

    Construct through :meth:`open` (which creates the directory on first
    use and performs crash recovery on every later one).  Context-manager
    protocol closes the log handles.
    """

    def __init__(
        self,
        path: Union[str, Path],
        sync: str = SYNC_FSYNC,
        workers: Optional[int] = None,
        exclusive: bool = False,
    ) -> None:
        if sync not in SYNC_MODES:
            raise DatabaseError(f"unknown sync mode {sync!r}; use {SYNC_MODES}")
        self.path = Path(path)
        self.sync = sync
        #: worker count handed to every relation's session: sharded
        #: parallel re-chases for ``verify`` (``None`` keeps them serial)
        self.workers = workers
        #: hold the directory lock for the whole lifetime instead of just
        #: the init/catalog windows — the single-owner mode ``repro serve``
        #: runs in, so a second process cannot even open the directory
        self.exclusive = exclusive
        self._lock = storage.DirectoryLock(self.path)
        self._relations: Dict[str, ManagedRelation] = {}
        self._closed = False

    # -- lifecycle ---------------------------------------------------------

    @classmethod
    def open(
        cls,
        path: Union[str, Path],
        sync: str = SYNC_FSYNC,
        create: bool = True,
        workers: Optional[int] = None,
        exclusive: bool = False,
    ) -> "Database":
        """Open and recover a database directory.

        With ``create=True`` (the default) a missing directory is
        initialized empty; with ``create=False`` it is an error instead —
        the right mode for read/inspect flows, where silently materializing
        a fresh database at a mistyped path would masquerade as success.
        ``workers`` enables sharded parallel verification re-chases on
        every relation (see :meth:`ManagedRelation.verify`).

        Initialization and recovery run under an advisory directory lock
        (``<path>/.lock``), so two processes racing ``create=True`` on one
        directory cannot both initialize it.  With ``exclusive=True`` the
        lock is kept for the handle's lifetime (released by
        :meth:`close`); otherwise it is released once loading completes.
        """
        db = cls(path, sync, workers=workers, exclusive=exclusive)
        db._load(create)
        return db

    def _load(self, create: bool = True) -> None:
        root = self.path
        if root.exists() and not root.is_dir():
            raise DatabaseError(f"{root} exists and is not a directory")
        manifest_path = root / storage.MANIFEST_NAME
        if not create and not manifest_path.exists():
            raise DatabaseError(
                f"no database at {root} (no {storage.MANIFEST_NAME}); "
                "create one with Database.open(..., create=True) / repro db init"
            )
        # the lock file needs the root to exist; everything else (including
        # the manifest decision, so two racing creates serialize on it)
        # happens under the lock
        root.mkdir(parents=True, exist_ok=True)
        self._lock.acquire()
        try:
            (root / storage.RELATIONS_DIR).mkdir(parents=True, exist_ok=True)
            if manifest_path.exists():
                manifest = storage.read_json(manifest_path, "manifest")
                storage.check_format(manifest, "manifest")
                names = manifest.get("relations")
                if not isinstance(names, list):
                    raise DatabaseError(
                        f"manifest {manifest_path} lists no relations"
                    )
            else:
                names = []
                self._write_manifest(names)
            for name in names:
                self._relations[name] = self._recover(name)
        except BaseException:
            self._lock.release()
            raise
        if not self.exclusive:
            self._lock.release()

    def _write_manifest(self, names: List[str]) -> None:
        storage.write_json_atomic(
            self.path / storage.MANIFEST_NAME,
            {"format": storage.FORMAT, "relations": sorted(names)},
            fsync=self.sync == SYNC_FSYNC,
        )

    def _recover(self, name: str) -> ManagedRelation:
        directory = storage.relation_dir(self.path, name)
        spec = storage.read_json(directory / storage.SCHEMA_NAME, f"schema of {name}")
        storage.check_format(spec, f"schema of {name}")
        schema = schema_from_spec(spec["schema"])
        fds = fds_from_spec(spec.get("fds", []))

        codec = ValueCodec()
        rows: List[List[Any]] = []
        base_seq = 0
        checkpoint_path = directory / storage.CHECKPOINT_NAME
        if checkpoint_path.exists():
            checkpoint = storage.read_json(checkpoint_path, f"checkpoint of {name}")
            storage.check_format(checkpoint, f"checkpoint of {name}")
            try:
                rows = [codec.decode_row(row) for row in checkpoint["rows"]]
                base_seq = int(checkpoint["seq"])
                codec.seed_counter(int(checkpoint["next_null"]))
            except (KeyError, TypeError, ValueError) as error:
                raise DatabaseError(
                    f"malformed checkpoint for {name}: {error}"
                ) from None

        session = ChaseSession(schema, fds, rows=rows, workers=self.workers)
        wal_path = directory / storage.WAL_NAME
        records, good_bytes, torn = oplog.scan(wal_path)
        if torn:
            # the torn record's op never applied in memory either
            # (journal-then-apply), so dropping it restores exactly the
            # state as of the last completed op
            with open(wal_path, "r+b") as handle:
                handle.truncate(good_bytes)
        snapshots: List[SessionSnapshot] = []
        seq = replay(session, records, codec, base_seq, snapshots)
        info = {
            "replayed": seq - base_seq,
            "torn_tail_dropped": torn,
            "checkpoint_seq": base_seq,
            "rows": len(session),
        }
        wal = OpLog(wal_path, sync=self.sync)
        managed = ManagedRelation(
            name, directory, session, codec, wal, seq, base_seq, info,
            snapshots=snapshots,
        )
        from ..analysis import sanitize  # local: keeps the layer import-light

        if sanitize.enabled():
            sanitize.audit_relation(managed)
        return managed

    def close(self) -> None:
        """Flush and close every relation's log handle (idempotent)."""
        for relation in self._relations.values():
            relation.close()
        self._lock.release()
        self._closed = True

    def __enter__(self) -> "Database":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- the catalog -------------------------------------------------------

    def _catalog_locked(self):
        """Context manager holding the directory lock for one catalog
        mutation (no-op when :attr:`exclusive` already holds it)."""
        if self._lock.held:
            return contextlib.nullcontext()

        @contextlib.contextmanager
        def _scope():
            self._lock.acquire()
            try:
                yield
            finally:
                self._lock.release()

        return _scope()

    def _manifest_names_on_disk(self) -> List[str]:
        """The relation names the on-disk manifest lists right now —
        another handle may have grown the catalog since we loaded."""
        manifest_path = self.path / storage.MANIFEST_NAME
        if not manifest_path.exists():
            return []
        manifest = storage.read_json(manifest_path, "manifest")
        names = manifest.get("relations")
        return [n for n in names if isinstance(n, str)] if isinstance(names, list) else []

    def create(
        self,
        name: str,
        attributes: Union[RelationSchema, str, Sequence[str]],
        fds: Iterable[FDInput] = (),
        domains: Optional[Mapping[str, Domain]] = None,
    ) -> ManagedRelation:
        """Register a new empty relation and return its managed handle."""
        if not _NAME.match(name):
            raise DatabaseError(
                f"bad relation name {name!r}: use letters, digits, '_', "
                "'.', '-' (not starting with '.' or '-')"
            )
        if name in self._relations:
            raise DatabaseError(f"relation {name!r} already exists")
        if isinstance(attributes, RelationSchema):
            schema = attributes
        else:
            schema = RelationSchema(name, attributes, domains=domains)
        session = ChaseSession(schema, fds, workers=self.workers)
        with self._catalog_locked():
            # re-read the manifest under the lock: another handle may have
            # created relations since we loaded, and a duplicate — or a
            # manifest write built only from *our* in-memory catalog —
            # would silently orphan theirs
            on_disk = self._manifest_names_on_disk()
            if name in on_disk:
                raise DatabaseError(
                    f"relation {name!r} already exists (created by another "
                    "handle of this database)"
                )
            directory = storage.relation_dir(self.path, name)
            directory.mkdir(parents=True, exist_ok=True)
            # a crashed drop() may have left this directory behind with stale
            # files (it was removed from the manifest first, so open() ignored
            # it) — a fresh relation must not inherit them: the old checkpoint
            # would resurrect dropped rows and its seq would swallow new ops
            for stale in (storage.WAL_NAME, storage.CHECKPOINT_NAME):
                (directory / stale).unlink(missing_ok=True)
            fsync = self.sync == SYNC_FSYNC
            storage.write_json_atomic(
                directory / storage.SCHEMA_NAME,
                {
                    "format": storage.FORMAT,
                    "schema": schema_to_spec(schema),
                    "fds": fds_to_spec(session.fds),
                },
                fsync=fsync,
            )
            wal = OpLog(directory / storage.WAL_NAME, sync=self.sync)
            relation = ManagedRelation(
                name, directory, session, ValueCodec(), wal, seq=0, checkpoint_seq=0
            )
            self._relations[name] = relation
            # manifest last: a crash before this line leaves an orphan
            # directory that open() ignores, never a listed-but-missing one
            self._write_manifest(sorted(set(on_disk) | set(self._relations)))
        return relation

    def relation(self, name: str) -> ManagedRelation:
        try:
            return self._relations[name]
        except KeyError:
            raise DatabaseError(
                f"no relation {name!r} in {self.path} "
                f"(have: {', '.join(sorted(self._relations)) or 'none'})"
            ) from None

    def __getitem__(self, name: str) -> ManagedRelation:
        return self.relation(name)

    def __contains__(self, name: object) -> bool:
        return name in self._relations

    def __iter__(self) -> Iterator[ManagedRelation]:
        return iter(self._relations.values())

    def __len__(self) -> int:
        return len(self._relations)

    def names(self) -> List[str]:
        return sorted(self._relations)

    def drop(self, name: str) -> None:
        """Remove a relation and its files."""
        relation = self.relation(name)
        relation.close()
        del self._relations[name]
        with self._catalog_locked():
            names = set(self._manifest_names_on_disk()) | set(self._relations)
            names.discard(name)
            self._write_manifest(sorted(names))
        shutil.rmtree(storage.relation_dir(self.path, name), ignore_errors=True)

    # -- whole-database operations -----------------------------------------

    def checkpoint(self, name: Optional[str] = None) -> Dict[str, int]:
        """Checkpoint one relation (or all); returns ops absorbed per name."""
        targets = [self.relation(name)] if name else list(self._relations.values())
        return {relation.name: relation.checkpoint() for relation in targets}

    def stats(self) -> Dict[str, Dict[str, int]]:
        return {name: rel.stats() for name, rel in sorted(self._relations.items())}

    def audit(self) -> None:
        """Sanitizer sweep over every open relation (explicit, un-gated).
        Raises :class:`~repro.errors.SanitizerError` on the first
        violation; see :meth:`ManagedRelation.audit`."""
        for relation in self._relations.values():
            relation.audit()
