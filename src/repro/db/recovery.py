"""Replay-based crash recovery: op records back onto a live session.

Recovery is the *same* code path as normal operation — a log record is
decoded into the session's public mutator vocabulary and applied — which
is what keeps the chase semantics canonical under replay: shared nulls
re-share (the codec returns one object per canonical id), forced
substitutions re-derive from the same NS-rule fixpoint, and NOTHING
states re-poison.  Nothing about the maintained partition is stored or
trusted from disk beyond the raw rows and the op stream.
"""

from __future__ import annotations

from typing import List

from ..chase.session import ChaseSession, SessionSnapshot
from ..core.codec import ValueCodec
from ..errors import DatabaseError
from .log import describe


def apply_record(
    session: ChaseSession,
    payload: dict,
    codec: ValueCodec,
    snapshots: List[SessionSnapshot],
) -> None:
    """Apply one decoded log record to ``session``.

    ``snapshots`` is the replayed snapshot stack: ``snapshot``/``rollback``
    records reconstruct the LIFO discipline the managed relation journals.
    """
    op = payload.get("op")
    try:
        if op == "insert":
            session.insert(codec.decode_row(payload["row"]))
        elif op == "delete":
            session.delete(payload["index"])
        elif op == "update":
            session.update(
                payload["index"],
                {
                    attr: codec.decode(token)
                    for attr, token in payload["set"].items()
                },
            )
        elif op == "replace":
            session.replace(payload["index"], codec.decode_row(payload["row"]))
        elif op == "fill":
            session.fill(
                payload["index"], payload["attr"], codec.decode(payload["value"])
            )
        elif op == "reset":
            session.reset([codec.decode_row(row) for row in payload["rows"]])
        elif op == "adopt":
            session.adopt()
        elif op == "snapshot":
            snapshots.append(session.snapshot())
        elif op == "rollback":
            if not snapshots:
                raise DatabaseError("rollback record without a snapshot")
            session.rollback(snapshots.pop())
        elif op == "discard":
            snapshots.clear()
        else:
            raise DatabaseError(f"unknown op {op!r}")
    except DatabaseError:
        raise
    except KeyError as error:
        raise DatabaseError(
            f"malformed log record {describe(payload)}: missing field {error}"
        ) from None
    except Exception as error:
        raise DatabaseError(
            f"replay of log record {describe(payload)} failed: {error}"
        ) from error


def replay(
    session: ChaseSession,
    records: List[dict],
    codec: ValueCodec,
    base_seq: int,
    snapshots: List[SessionSnapshot],
) -> int:
    """Replay the log tail over a checkpoint-restored session.

    Records with ``seq <= base_seq`` are already covered by the checkpoint
    (the checkpoint-written-but-log-not-truncated crash window) and are
    skipped; the remainder must continue the sequence contiguously.
    ``snapshots`` receives the snapshot stack outstanding at crash time —
    the caller hands it to the managed relation so a journalled snapshot
    survives recovery and can still be rolled back (checkpoints never
    absorb an outstanding snapshot, so every live ``snapshot`` record is
    in the replayed tail).  Returns the last applied seq (``base_seq``
    when nothing applied).
    """
    last = base_seq
    for payload in records:
        seq = payload.get("seq")
        if not isinstance(seq, int):
            raise DatabaseError(f"log record {payload!r} has no integer seq")
        if seq <= base_seq:
            continue
        if seq != last + 1:
            raise DatabaseError(
                f"op log gap: expected seq {last + 1}, found {seq}"
            )
        apply_record(session, payload, codec, snapshots)
        last = seq
    return last


def field_identical(first, second) -> bool:
    """The engine-equivalence contract as a predicate (same-process null
    identity; see ``tests/strategies.py`` for the asserting twin)."""
    return (
        [row.values for row in first.relation.rows]
        == [row.values for row in second.relation.rows]
        and first.nec_classes == second.nec_classes
        and {id(k): v for k, v in first.substitutions.items()}
        == {id(k): v for k, v in second.substitutions.items()}
        and first.has_nothing == second.has_nothing
    )


def verify_fixpoint(session: ChaseSession, workers=None) -> bool:
    """The session invariant, checked live: the maintained fixpoint is
    field-identical to a from-scratch chase of the raw rows.

    ``workers`` routes the reference chase through the sharded parallel
    executor (defaulting to the session's own ``workers`` setting; ``None``
    keeps it serial) — big relations verify at parallel speed."""
    if workers is None:
        workers = getattr(session, "workers", None)
    if workers is None:
        from ..chase.engine import chase  # local: avoids import cycle

        reference = chase(session.raw_relation(), list(session.fds))
    else:
        from ..chase.parallel import parallel_chase  # local: avoids cycle

        reference = parallel_chase(
            session.raw_relation(),
            session.fds,
            workers=workers,
            plan=session.plan(),
        )
    return field_identical(session.result(), reference)
